//! The frame layer: connection preamble and length-prefixed payloads.
//!
//! See the crate docs for the byte layout. This module only moves opaque
//! payload byte vectors; the message vocabulary lives in [`crate::proto`].

use std::io::{Read, Write};

use sympl_symbolic::codec::encode_u64;

use crate::WireError;

/// The four preamble bytes every peer sends first.
pub const MAGIC: [u8; 4] = *b"SYWR";

/// The protocol revision this build speaks. Bump on ANY change to the
/// preamble, frame, or message byte formats (the golden-vector test under
/// `tests/wire_golden/` is the tripwire).
///
/// History:
/// - **1** — initial protocol: `Task`/`TaskDone`/`Error`/`Shutdown`.
/// - **2** — fault-tolerance revision: `Heartbeat` and `Cancel` control
///   frames, and task frames grew a trailing `heartbeat_interval`
///   duration (the cadence the worker must beat at while a task is in
///   flight). Version negotiation is symmetric and all-or-nothing, so a
///   v1 peer refuses a v2 connection at the preamble — it can never
///   mis-decode the extended task frame.
/// - **3** — elastic-membership revision: `Register` and `Welcome`
///   frames let a freshly started worker join a *running* campaign
///   (worker connects to the coordinator's join listener, announces
///   itself, and receives the program identity it will be asked to
///   resolve). No existing frame changed shape, but the vocabulary grew,
///   so a v2 peer must refuse a v3 connection rather than choke on an
///   unknown message tag mid-conversation.
/// - **4** — campaign-service revision: `ClientHello` and `ClientAccept`
///   frames open every serve-side conversation (the coordinator
///   announces a client label + scheduling priority; the multi-tenant
///   service answers with a session id, or with a typed `Error` frame
///   when it is at capacity). Existing frames kept their shapes, but the
///   conversation's opening sequence changed, so a v3 peer must refuse a
///   v4 connection at the preamble rather than mistake the hello for an
///   unexpected message.
pub const PROTOCOL_VERSION: u64 = 4;

/// Hard cap on a frame's payload size (64 MiB). A corrupt or hostile
/// length prefix fails fast instead of asking the allocator for the moon;
/// real frames are nowhere near this (a task frame is bytes-per-point,
/// a result frame bytes-per-solution-state).
pub const MAX_FRAME_LEN: usize = 64 << 20;

fn read_byte(r: &mut impl Read) -> Result<u8, WireError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Reads an LEB128 varint from a byte stream (the streaming twin of
/// `sympl_symbolic::codec::decode_u64`).
fn read_varint(r: &mut impl Read) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = read_byte(r)?;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(sympl_symbolic::CodecError::Overflow.into());
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Writes this side's preamble: [`MAGIC`] plus [`PROTOCOL_VERSION`].
///
/// # Errors
///
/// Any socket error.
pub fn write_preamble(w: &mut impl Write) -> Result<(), WireError> {
    w.write_all(&MAGIC)?;
    let mut buf = Vec::with_capacity(2);
    encode_u64(PROTOCOL_VERSION, &mut buf);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Reads and validates the peer's preamble.
///
/// # Errors
///
/// [`WireError::BadMagic`] when the stream does not open with [`MAGIC`],
/// [`WireError::VersionMismatch`] when the peer announces a revision this
/// build does not speak, plus any socket error.
pub fn read_preamble(r: &mut impl Read) -> Result<(), WireError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let theirs = read_varint(r)?;
    if theirs != PROTOCOL_VERSION {
        return Err(WireError::VersionMismatch {
            ours: PROTOCOL_VERSION,
            theirs,
        });
    }
    Ok(())
}

/// Performs the symmetric preamble exchange on a duplex stream: write
/// ours, then read and validate theirs. Both sides can do this
/// concurrently without deadlock — the preamble is a handful of bytes,
/// far below any socket buffer.
///
/// # Errors
///
/// The errors of [`write_preamble`] and [`read_preamble`].
pub fn handshake<S: Read + Write>(stream: &mut S) -> Result<(), WireError> {
    write_preamble(stream)?;
    read_preamble(stream)
}

/// Writes one frame: a varint payload length, then the payload.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] when the payload exceeds
/// [`MAX_FRAME_LEN`], plus any socket error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge(payload.len()));
    }
    let mut prefix = Vec::with_capacity(5);
    encode_u64(payload.len() as u64, &mut prefix);
    w.write_all(&prefix)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame's payload.
///
/// # Errors
///
/// [`WireError::Disconnected`] when the peer closed the stream at a frame
/// boundary (a clean hang-up), [`WireError::FrameTooLarge`] on an
/// over-cap length prefix, plus any socket error.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let len = usize::try_from(read_varint(r)?)
        .map_err(|_| WireError::from(sympl_symbolic::CodecError::Overflow))?;
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip_through_a_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0x80; 300]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), vec![0x80; 300]);
        assert!(matches!(read_frame(&mut r), Err(WireError::Disconnected)));
    }

    #[test]
    fn preamble_negotiates_and_rejects() {
        let mut buf = Vec::new();
        write_preamble(&mut buf).unwrap();
        read_preamble(&mut Cursor::new(&buf)).unwrap();

        assert!(matches!(
            read_preamble(&mut Cursor::new(b"HTTP/1.1")),
            Err(WireError::BadMagic(m)) if &m == b"HTTP"
        ));

        let mut future = MAGIC.to_vec();
        encode_u64(PROTOCOL_VERSION + 1, &mut future);
        assert!(matches!(
            read_preamble(&mut Cursor::new(&future)),
            Err(WireError::VersionMismatch { theirs, .. }) if theirs == PROTOCOL_VERSION + 1
        ));
    }

    #[test]
    fn oversized_frames_are_refused_both_ways() {
        let mut buf = Vec::new();
        encode_u64((MAX_FRAME_LEN + 1) as u64, &mut buf);
        assert!(matches!(
            read_frame(&mut Cursor::new(&buf)),
            Err(WireError::FrameTooLarge(_))
        ));
        // The writer refuses before touching the stream.
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        let mut sink = Vec::new();
        assert!(matches!(
            write_frame(&mut sink, &huge),
            Err(WireError::FrameTooLarge(_))
        ));
        assert!(sink.is_empty());
    }
}
