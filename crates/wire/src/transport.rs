//! The TCP transport: a campaign coordinator and the worker agent.
//!
//! The coordinator ([`run_distributed`]) shards a campaign with the same
//! [`sympl_cluster::shard_specs`] partition as the in-process pool, opens
//! one connection per worker address, and drives a request/response loop
//! per worker off a shared task queue — a worker that disconnects,
//! times out, or refuses a task has its in-flight task re-queued for the
//! survivors (bounded retries). Results pool through
//! [`sympl_cluster::pool_results`], so the merged
//! [`CampaignReport`] is ordered exactly as an in-process run's.
//!
//! The worker ([`WorkerServer`]) accepts one coordinator at a time and
//! runs each task frame through [`sympl_cluster::run_task_spec`] — the
//! same function the in-process pool's threads call — under the budgets
//! and point-workers share the frame carries.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sympl_asm::Program;
use sympl_check::Predicate;
use sympl_cluster::{
    pool_results, run_task_spec, shard_specs, CampaignReport, ClusterConfig, Finding, TaskResult,
    TaskSpec,
};
use sympl_detect::DetectorSet;
use sympl_inject::Campaign;

use crate::frame::{handshake, read_frame, write_frame};
use crate::proto::{decode_message, encode_message, Message, TaskFrame};
use crate::{program_digest, WireError};

/// The line a worker prints to stdout once it is ready, followed by its
/// bound socket address — the contract the loopback self-spawn helpers
/// parse to learn an OS-assigned port.
pub const LISTENING_PREFIX: &str = "sympl-wire listening on ";

/// Resolves a task frame's program id to the program and detectors the
/// worker should run. `symplfied serve` resolves the bundled
/// `sympl_apps` workload names; tests plug in whatever they like.
pub type ProgramResolver<'a> = dyn Fn(&str) -> Option<(Program, DetectorSet)> + Sync + 'a;

/// A buffered duplex protocol connection.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn establish(mut stream: TcpStream) -> Result<Self, WireError> {
        handshake(&mut stream)?;
        Ok(Conn {
            reader: BufReader::new(stream.try_clone().map_err(WireError::Io)?),
            writer: stream,
        })
    }

    fn send(&mut self, message: &Message) -> Result<(), WireError> {
        let payload = encode_message(message)?;
        write_frame(&mut self.writer, &payload)
    }

    fn recv(&mut self) -> Result<Message, WireError> {
        let payload = read_frame(&mut self.reader)?;
        Ok(decode_message(&payload)?)
    }
}

/// The worker agent: a TCP listener that runs campaign tasks for a
/// coordinator. Exposed on the CLI as `symplfied serve --listen <addr>`.
pub struct WorkerServer {
    listener: TcpListener,
}

impl WorkerServer {
    /// Binds the worker to `addr` (use port 0 for an OS-assigned port).
    ///
    /// # Errors
    ///
    /// Any socket error.
    pub fn bind(addr: &str) -> io::Result<Self> {
        Ok(WorkerServer {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound socket address.
    ///
    /// # Errors
    ///
    /// Any socket error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Prints the [`LISTENING_PREFIX`] readiness line spawn helpers wait
    /// for.
    ///
    /// # Errors
    ///
    /// Any socket error resolving the bound address.
    pub fn announce(&self) -> io::Result<()> {
        println!("{LISTENING_PREFIX}{}", self.local_addr()?);
        // The line must be visible to a parent reading our piped stdout
        // before we block in accept.
        io::stdout().flush()
    }

    /// Serves coordinators one connection at a time: each task frame runs
    /// through [`sympl_cluster::run_task_spec`] and is answered with a
    /// `TaskDone` (or `Error`) frame. A coordinator hang-up returns the
    /// worker to `accept`; a `Shutdown` frame returns from this function.
    ///
    /// # Errors
    ///
    /// Only listener-level failures; per-connection errors are reported
    /// to stderr and the worker keeps serving.
    pub fn serve(&self, resolve: &ProgramResolver<'_>) -> Result<(), WireError> {
        loop {
            let (stream, peer) = self.listener.accept().map_err(WireError::Io)?;
            match Self::handle_connection(stream, resolve) {
                Ok(true) => return Ok(()),
                Ok(false) => {}
                Err(e) => eprintln!("sympl-wire worker: connection from {peer} failed: {e}"),
            }
        }
    }

    /// Runs one coordinator conversation. Returns `true` when the
    /// coordinator asked the worker to shut down.
    fn handle_connection(
        stream: TcpStream,
        resolve: &ProgramResolver<'_>,
    ) -> Result<bool, WireError> {
        let mut conn = Conn::establish(stream)?;
        loop {
            let message = match conn.recv() {
                Err(WireError::Disconnected) => return Ok(false),
                other => other?,
            };
            match message {
                Message::Task(task) => {
                    let reply = run_task_frame(&task, resolve);
                    conn.send(&reply)?;
                }
                Message::Shutdown => return Ok(true),
                Message::TaskDone { .. } | Message::Error(_) => {
                    return Err(WireError::UnexpectedMessage("result"))
                }
            }
        }
    }
}

/// Executes one task frame, producing the reply message.
fn run_task_frame(task: &TaskFrame, resolve: &ProgramResolver<'_>) -> Message {
    let Some((program, detectors)) = resolve(&task.program_id) else {
        return Message::Error(format!("unknown program id `{}`", task.program_id));
    };
    // Decode once per task frame: the whole task runs against this one
    // cached IR, so resolve-then-decode is the only lowering that happens.
    let _ = program.decoded();
    let digest = program_digest(&program);
    if digest != task.program_digest {
        return Message::Error(format!(
            "program digest mismatch for `{}`: this worker has a different revision",
            task.program_id
        ));
    }
    let config = ClusterConfig {
        workers: 1,
        tasks: 1,
        search: task.search.clone(),
        task_budget: task.task_budget,
        max_findings_per_task: task.max_findings,
        point_workers_hint: Some(task.point_workers.max(1)),
    };
    let (result, findings) = run_task_spec(
        &program,
        &detectors,
        &task.input,
        &task.spec,
        &task.predicate,
        &config,
    );
    Message::TaskDone { result, findings }
}

/// A campaign to distribute: the same inputs [`sympl_cluster::run_cluster`]
/// takes, plus the program id remote workers resolve. The coordinator
/// never runs a search itself — the program is only needed to compute the
/// digest workers verify against.
pub struct CampaignJob<'a> {
    /// The campaign's program (digested into every task frame).
    pub program: &'a Program,
    /// The id workers resolve (a bundled workload name, e.g. `"tcas"`).
    pub program_id: &'a str,
    /// The campaign's input stream.
    pub input: &'a [i64],
    /// The injection campaign to shard.
    pub campaign: &'a Campaign,
    /// The outcome predicate (must be wire-encodable).
    pub predicate: &'a Predicate,
    /// Budgets and sharding — `workers` is ignored (the worker list
    /// plays that role); everything else means what it means in-process.
    pub config: &'a ClusterConfig,
}

/// Runs a campaign across remote workers, returning the same
/// [`CampaignReport`] an in-process [`sympl_cluster::run_cluster`] with
/// the same config produces (wall-clock fields aside; see the crate docs'
/// determinism contract).
///
/// `shutdown_workers` sends each surviving worker a `Shutdown` frame once
/// the queue drains — the loopback self-spawn mode uses it so worker
/// processes exit cleanly.
///
/// # Errors
///
/// [`WireError::NoWorkersLeft`] when tasks remain but every worker
/// connection failed, died, or exhausted its retries; the fatal error of
/// a task that failed on too many workers; never a partial report.
pub fn run_distributed(
    job: &CampaignJob<'_>,
    workers_at: &[String],
    shutdown_workers: bool,
) -> Result<CampaignReport, WireError> {
    let start = Instant::now();
    let digest = program_digest(job.program);
    let point_workers = job.config.point_share();
    // A read deadline so a wedged worker cannot hang the campaign: twice
    // the task budget plus slack. Unbudgeted tasks may legitimately run
    // arbitrarily long, so they get no deadline.
    let read_timeout = job
        .config
        .task_budget
        .map(|b| b * 2 + Duration::from_secs(30));

    let queue: Mutex<VecDeque<(TaskSpec, usize)>> = Mutex::new(
        shard_specs(job.campaign, job.config.tasks)
            .into_iter()
            .map(|spec| (spec, 0))
            .collect(),
    );
    let results: Mutex<Vec<(TaskResult, Vec<Finding>)>> = Mutex::new(Vec::new());
    let fatal: Mutex<Option<WireError>> = Mutex::new(None);
    let abort = AtomicBool::new(false);
    // Tasks popped but not yet resolved (completed or re-queued). An idle
    // worker must NOT exit while another worker's task is in flight: that
    // task may fail and be re-queued, and the idle worker is then the one
    // to pick it up. Incremented under the queue lock at pop time, and on
    // the failure path decremented only *after* the re-queue push, so an
    // observer holding the queue lock can never see "queue empty and
    // nothing in flight" while a task is still going to come back.
    let in_flight = AtomicUsize::new(0);
    // A task that failed on this many workers is declared poisonous and
    // aborts the campaign instead of cycling forever.
    let max_attempts = workers_at.len().max(1);

    std::thread::scope(|scope| {
        let (queue, results, fatal, abort) = (&queue, &results, &fatal, &abort);
        let in_flight = &in_flight;
        for addr in workers_at {
            scope.spawn(move || {
                let mut conn = match TcpStream::connect(addr.as_str())
                    .map_err(WireError::from)
                    .and_then(|stream| {
                        stream
                            .set_read_timeout(read_timeout)
                            .map_err(WireError::Io)?;
                        Conn::establish(stream)
                    }) {
                    Ok(conn) => conn,
                    Err(e) => {
                        eprintln!("sympl-wire coordinator: cannot reach worker {addr}: {e}");
                        return;
                    }
                };
                loop {
                    if abort.load(Ordering::Relaxed) {
                        return;
                    }
                    let popped = {
                        let mut q = queue.lock().expect("queue lock");
                        let p = q.pop_front();
                        if p.is_some() {
                            in_flight.fetch_add(1, Ordering::SeqCst);
                        }
                        p
                    };
                    let Some((spec, attempts)) = popped else {
                        if in_flight.load(Ordering::SeqCst) > 0 {
                            // Another worker may yet fail and re-queue its
                            // task; stay available.
                            std::thread::sleep(Duration::from_millis(5));
                            continue;
                        }
                        if shutdown_workers {
                            let _ = conn.send(&Message::Shutdown);
                        }
                        return;
                    };
                    match dispatch_task(&mut conn, job, digest, point_workers, &spec) {
                        Ok(outcome) => {
                            results.lock().expect("results lock").push(outcome);
                            in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                        Err(e) => {
                            if attempts + 1 >= max_attempts {
                                *fatal.lock().expect("fatal lock") = Some(e);
                                abort.store(true, Ordering::Relaxed);
                            } else {
                                eprintln!(
                                    "sympl-wire coordinator: worker {addr} failed task {} \
                                     (attempt {}): {e}; re-queueing",
                                    spec.id,
                                    attempts + 1
                                );
                                queue
                                    .lock()
                                    .expect("queue lock")
                                    .push_front((spec, attempts + 1));
                            }
                            // Re-queue before the decrement (see in_flight
                            // above), then abandon this connection; the
                            // rest of the queue is the other workers'.
                            in_flight.fetch_sub(1, Ordering::SeqCst);
                            return;
                        }
                    }
                }
            });
        }
    });

    if let Some(err) = fatal.into_inner().expect("fatal lock") {
        return Err(err);
    }
    let pending = queue.into_inner().expect("queue lock").len();
    if pending > 0 {
        return Err(WireError::NoWorkersLeft { pending });
    }
    Ok(pool_results(
        results.into_inner().expect("results lock"),
        start.elapsed(),
    ))
}

/// Sends one task to a worker and awaits its result.
fn dispatch_task(
    conn: &mut Conn,
    job: &CampaignJob<'_>,
    digest: u128,
    point_workers: usize,
    spec: &TaskSpec,
) -> Result<(TaskResult, Vec<Finding>), WireError> {
    conn.send(&Message::Task(TaskFrame {
        program_id: job.program_id.to_owned(),
        program_digest: digest,
        input: job.input.to_vec(),
        spec: spec.clone(),
        predicate: job.predicate.clone(),
        search: job.config.search.clone(),
        task_budget: job.config.task_budget,
        max_findings: job.config.max_findings_per_task,
        point_workers,
    }))?;
    match conn.recv()? {
        Message::TaskDone { result, findings } => Ok((result, findings)),
        Message::Error(msg) => Err(WireError::Remote(msg)),
        Message::Task(_) | Message::Shutdown => Err(WireError::UnexpectedMessage("task")),
    }
}

/// Worker processes spawned on loopback for tests, demos, and CI; killed
/// on drop if still running.
pub struct SpawnedWorkers {
    /// The workers' bound addresses, ready for [`run_distributed`].
    pub addrs: Vec<String>,
    children: Vec<Child>,
}

impl SpawnedWorkers {
    /// Waits for every worker process to exit (after a campaign run with
    /// `shutdown_workers = true`), for up to ~10 seconds per worker.
    ///
    /// A worker whose coordinator connection was abandoned mid-campaign
    /// (failure → re-queue) never receives a `Shutdown` frame and sits in
    /// its accept loop; rather than hang forever, such a worker is killed
    /// and reported as an error — the campaign's results are unaffected,
    /// but a clean-shutdown assertion (the integration tests') should see
    /// it.
    ///
    /// # Errors
    ///
    /// Any wait error, a worker exiting unsuccessfully, or a worker that
    /// had to be killed after the grace period.
    pub fn join(mut self) -> io::Result<()> {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        // Pop children one at a time so an early error return leaves the
        // rest inside `self` for `Drop` to kill — a lazy `drain` would
        // leak them as orphan processes instead.
        while let Some(mut child) = self.children.pop() {
            let status = loop {
                if let Some(status) = child.try_wait()? {
                    break status;
                }
                if std::time::Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(io::Error::other(
                        "worker did not exit after shutdown; killed",
                    ));
                }
                std::thread::sleep(Duration::from_millis(20));
            };
            if !status.success() {
                return Err(io::Error::other(format!("worker exited with {status}")));
            }
        }
        Ok(())
    }
}

impl Drop for SpawnedWorkers {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns `n` worker processes of `exe` on 127.0.0.1, waiting for each to
/// print its [`LISTENING_PREFIX`] readiness line. `args` is the argument
/// prefix that puts the executable into worker mode listening on
/// `127.0.0.1:0` (e.g. `["serve", "--listen", "127.0.0.1:0"]` for the
/// `symplfied` CLI, or a campaign binary's self-spawn flag).
///
/// # Errors
///
/// Any spawn error, or a worker exiting / closing stdout before
/// announcing readiness.
pub fn spawn_loopback_workers(exe: &Path, args: &[String], n: usize) -> io::Result<SpawnedWorkers> {
    let mut workers = SpawnedWorkers {
        addrs: Vec::with_capacity(n),
        children: Vec::with_capacity(n),
    };
    for _ in 0..n {
        let mut child = Command::new(exe)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| io::Error::other("worker stdout not captured"))?;
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let Some(line) = lines.next() else {
                let _ = child.kill();
                return Err(io::Error::other(
                    "worker exited before announcing its address",
                ));
            };
            let line = line?;
            if let Some(addr) = line.strip_prefix(LISTENING_PREFIX) {
                break addr.trim().to_owned();
            }
        };
        workers.addrs.push(addr);
        workers.children.push(child);
    }
    Ok(workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::parse_program;
    use sympl_check::SearchLimits;
    use sympl_cluster::run_cluster;
    use sympl_inject::{Campaign, ErrorClass};
    use sympl_machine::ExecLimits;

    fn factorial() -> Program {
        parse_program(
            "ori $2 $0 #1\nread $1\nmov $3, $1\nori $4 $0 #1\n\
             loop: setgt $5 $3 $4\nbeq $5 0 exit\nmult $2 $2 $3\nsubi $3 $3 #1\nbeq $0 #0 loop\n\
             exit: prints \"Factorial = \"\nprint $2\nhalt",
        )
        .unwrap()
    }

    fn resolver(id: &str) -> Option<(Program, DetectorSet)> {
        (id == "factorial").then(|| (factorial(), DetectorSet::new()))
    }

    fn deterministic_config(tasks: usize) -> ClusterConfig {
        ClusterConfig {
            workers: 2,
            tasks,
            search: SearchLimits {
                exec: ExecLimits::with_max_steps(300),
                ..SearchLimits::default()
            },
            task_budget: None,
            max_findings_per_task: 10,
            point_workers_hint: Some(1),
        }
    }

    /// Starts an in-process worker serving the factorial resolver on a
    /// loopback port; returns its address and join handle.
    fn start_worker() -> (String, std::thread::JoinHandle<Result<(), WireError>>) {
        let server = WorkerServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.serve(&resolver));
        (addr, handle)
    }

    #[test]
    fn distributed_campaign_reproduces_in_process_report() {
        let program = factorial();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        let config = deterministic_config(5);

        let local = run_cluster(
            &program,
            &DetectorSet::new(),
            &[4],
            &campaign,
            &predicate,
            &config,
        );

        let (addr_a, join_a) = start_worker();
        let (addr_b, join_b) = start_worker();
        let job = CampaignJob {
            program: &program,
            program_id: "factorial",
            input: &[4],
            campaign: &campaign,
            predicate: &predicate,
            config: &config,
        };
        let distributed = run_distributed(&job, &[addr_a, addr_b], true).unwrap();
        join_a.join().unwrap().unwrap();
        join_b.join().unwrap().unwrap();

        assert_eq!(distributed.findings, local.findings, "findings verbatim");
        assert_eq!(distributed.tasks.len(), local.tasks.len());
        for (d, l) in distributed.tasks.iter().zip(&local.tasks) {
            assert_eq!(
                (d.id, d.points_examined, d.points_total),
                (l.id, l.points_examined, l.points_total)
            );
            assert_eq!(
                (d.activated, d.findings, d.completed),
                (l.activated, l.findings, l.completed)
            );
            assert_eq!(d.states_explored, l.states_explored);
        }
        assert_eq!(distributed.outcome_digest(), local.outcome_digest());
    }

    #[test]
    fn dropped_worker_has_its_task_requeued() {
        let program = factorial();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        let config = deterministic_config(4);

        // A flaky "worker" that handshakes, accepts one task, then drops
        // the connection without answering.
        let flaky_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let flaky_addr = flaky_listener.local_addr().unwrap().to_string();
        let flaky = std::thread::spawn(move || {
            let (mut stream, _) = flaky_listener.accept().unwrap();
            handshake(&mut stream).unwrap();
            let _ = read_frame(&mut stream).unwrap();
            // Drop the stream with the task unanswered.
        });

        let (real_addr, real_join) = start_worker();
        let job = CampaignJob {
            program: &program,
            program_id: "factorial",
            input: &[4],
            campaign: &campaign,
            predicate: &predicate,
            config: &config,
        };
        let distributed = run_distributed(&job, &[flaky_addr, real_addr], true).unwrap();
        flaky.join().unwrap();
        real_join.join().unwrap().unwrap();

        let local = run_cluster(
            &program,
            &DetectorSet::new(),
            &[4],
            &campaign,
            &predicate,
            &config,
        );
        assert_eq!(
            distributed.outcome_digest(),
            local.outcome_digest(),
            "the dropped task must be re-run on the surviving worker"
        );
        assert_eq!(distributed.tasks.len(), 4);
    }

    #[test]
    fn unknown_program_and_digest_mismatch_are_remote_errors() {
        let program = factorial();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        let config = deterministic_config(2);

        // Unknown id: the single worker refuses every attempt, so the
        // campaign aborts with the remote error.
        let (addr, join) = start_worker();
        let job = CampaignJob {
            program: &program,
            program_id: "no-such-workload",
            input: &[4],
            campaign: &campaign,
            predicate: &predicate,
            config: &config,
        };
        let err = run_distributed(&job, std::slice::from_ref(&addr), false).unwrap_err();
        assert!(
            matches!(err, WireError::Remote(ref m) if m.contains("unknown program")),
            "{err}"
        );

        // Digest mismatch: same id, different program body.
        let other = parse_program("read $1\nprint $1\nhalt").unwrap();
        let other_campaign = Campaign::new(&other, ErrorClass::RegisterFile);
        let job = CampaignJob {
            program: &other,
            program_id: "factorial",
            input: &[4],
            campaign: &other_campaign,
            predicate: &predicate,
            config: &config,
        };
        let err = run_distributed(&job, std::slice::from_ref(&addr), false).unwrap_err();
        assert!(
            matches!(err, WireError::Remote(ref m) if m.contains("digest mismatch")),
            "{err}"
        );

        // Shut the worker down via a bare connection.
        let stream = TcpStream::connect(addr.as_str()).unwrap();
        let mut conn = Conn::establish(stream).unwrap();
        conn.send(&Message::Shutdown).unwrap();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn no_reachable_workers_is_an_error() {
        let program = factorial();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        let config = deterministic_config(3);
        // A bound-then-dropped listener leaves a refused port behind.
        let dead_addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let job = CampaignJob {
            program: &program,
            program_id: "factorial",
            input: &[4],
            campaign: &campaign,
            predicate: &predicate,
            config: &config,
        };
        let err = run_distributed(&job, &[dead_addr], false).unwrap_err();
        assert!(
            matches!(err, WireError::NoWorkersLeft { pending: 3 }),
            "{err}"
        );
    }
}
