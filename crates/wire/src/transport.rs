//! The TCP transport: a campaign coordinator and the worker agent.
//!
//! The coordinator ([`run_distributed`] / [`run_distributed_with`])
//! shards a campaign with the same [`sympl_cluster::shard_specs`]
//! partition as the in-process pool, opens one connection per worker
//! address, and drives a request/response loop per worker off a shared
//! task queue. Supervision is heartbeat-based: every in-flight task's
//! worker must beat at the cadence the task frame carries, and a
//! connection silent past [`liveness_deadline`] is declared dead — its
//! task is re-queued for the survivors after a deterministic
//! [`backoff_delay`], the campaign finishing *degraded* rather than
//! aborting as long as one worker remains. Results pool through
//! [`sympl_cluster::pool_results`], so the merged [`CampaignReport`] is
//! ordered exactly as an in-process run's; with a checkpoint file
//! attached, every completed task is also persisted so a coordinator
//! crash can resume instead of restarting.
//!
//! The worker ([`WorkerServer`]) accepts one coordinator at a time and
//! runs each task frame through
//! [`sympl_cluster::run_task_spec_with_cancel`] — the same engine the
//! in-process pool's threads call — on a supervised thread, sending
//! `Heartbeat` frames at the requested cadence and honouring `Cancel`
//! frames between injection points.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, BufRead as _, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use sympl_asm::Program;
use sympl_check::Predicate;
use sympl_cluster::{
    merge_part_results, pool_results, run_task_spec_with_cancel, shard_specs,
    split_preserves_outcome, split_spec, CampaignReport, ClusterConfig, Finding, TaskResult,
    TaskSpec,
};
use sympl_detect::DetectorSet;
use sympl_inject::Campaign;

use crate::checkpoint::{campaign_key, load_checkpoint, CheckpointWriter};
use crate::frame::{handshake, read_frame, write_frame};
use crate::proto::{decode_message, encode_message, Message, TaskFrame};
use crate::{program_digest, WireError};

/// The line a worker prints to stdout once it is ready, followed by its
/// bound socket address — the contract the loopback self-spawn helpers
/// parse to learn an OS-assigned port.
pub const LISTENING_PREFIX: &str = "sympl-wire listening on ";

/// The heartbeat cadence [`run_distributed`] asks workers for when no
/// explicit `--heartbeat-interval` is configured.
pub const DEFAULT_HEARTBEAT_INTERVAL: Duration = Duration::from_millis(500);

/// The floor any configured heartbeat interval is clamped to, so a zero
/// or near-zero cadence cannot turn both ends into busy loops.
pub const MIN_HEARTBEAT_INTERVAL: Duration = Duration::from_millis(10);

/// How long a connection with a task in flight may stay silent before the
/// coordinator declares the worker dead: four missed beats plus a second
/// of slack for scheduling and socket latency. Derived from the heartbeat
/// cadence — **never** from the task budget, so unbudgeted tasks are just
/// as supervised as budgeted ones (a wedged worker can no longer hang a
/// campaign whose tasks may legitimately run arbitrarily long).
#[must_use]
pub fn liveness_deadline(heartbeat_interval: Duration) -> Duration {
    heartbeat_interval * 4 + Duration::from_secs(1)
}

/// The deterministic, jitter-free delay before re-queuing a task that has
/// already failed `attempts` times: exponential from 50 ms, capped at
/// 2 s. Zero for a task that has never failed. No randomness — retry
/// schedules must replay identically run-to-run, like everything else in
/// the campaign layer.
#[must_use]
pub fn backoff_delay(attempts: usize) -> Duration {
    if attempts == 0 {
        return Duration::ZERO;
    }
    let base = Duration::from_millis(50);
    let cap = Duration::from_secs(2);
    base.saturating_mul(1u32 << (attempts - 1).min(16)).min(cap)
}

/// How often an idle coordinator connection re-polls the queue (and the
/// service's accept loop re-polls its listener).
pub(crate) const IDLE_POLL: Duration = Duration::from_millis(5);

/// How many times one original shard may be recursively halved by idle
/// workers before the coordinator stops splitting it: a poisonous or
/// merely slow shard fragments into at most `2^MAX_SPLIT_DEPTH` pieces,
/// never forever.
pub const MAX_SPLIT_DEPTH: usize = 6;

/// Locks a mutex, recovering the guard from a poisoned lock: a panic on
/// one dispatch thread must degrade the campaign, not crash the
/// coordinator. Every structure guarded this way (queue, results, fatal
/// error, checkpoint writer) is valid after any partial update — pushes
/// and pops are atomic at the element level.
pub(crate) fn lock_recovering<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Resolves a task frame's program id to the program and detectors the
/// worker should run. `symplfied serve` resolves the bundled
/// `sympl_apps` workload names; tests plug in whatever they like.
pub type ProgramResolver<'a> = dyn Fn(&str) -> Option<(Program, DetectorSet)> + Sync + 'a;

/// A buffered duplex protocol connection.
pub(crate) struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    pub(crate) fn establish(mut stream: TcpStream) -> Result<Self, WireError> {
        handshake(&mut stream)?;
        Ok(Conn {
            reader: BufReader::new(stream.try_clone().map_err(WireError::Io)?),
            writer: stream,
        })
    }

    pub(crate) fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), WireError> {
        self.reader
            .get_ref()
            .set_read_timeout(timeout)
            .map_err(WireError::Io)
    }

    pub(crate) fn send(&mut self, message: &Message) -> Result<(), WireError> {
        let payload = encode_message(message)?;
        write_frame(&mut self.writer, &payload)
    }

    pub(crate) fn recv(&mut self) -> Result<Message, WireError> {
        let payload = read_frame(&mut self.reader)?;
        Ok(decode_message(&payload)?)
    }

    /// Waits up to `wait` for the *start* of a frame, then up to `grace`
    /// for the frame to complete. `Ok(None)` means nothing arrived — and
    /// crucially, nothing was consumed: the wait is a buffered `fill_buf`
    /// peek, so a timeout can never eat half a varint and desynchronise
    /// the stream.
    pub(crate) fn poll_recv(
        &mut self,
        wait: Duration,
        grace: Duration,
    ) -> Result<Option<Message>, WireError> {
        self.set_read_timeout(Some(wait.max(Duration::from_millis(1))))?;
        match self.reader.fill_buf() {
            Ok(buf) => {
                if buf.is_empty() {
                    return Err(WireError::Disconnected);
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) => return Err(e.into()),
        }
        self.set_read_timeout(Some(grace.max(Duration::from_millis(1))))?;
        self.recv().map(Some)
    }
}

/// The worker agent: a TCP listener that runs campaign tasks for
/// coordinators. Exposed on the CLI as `symplfied serve --listen <addr>`.
/// [`WorkerServer::serve`] (and its configurable twin
/// [`WorkerServer::serve_with`], in [`crate::service`]) multiplexes many
/// concurrent coordinator sessions over one fairly-scheduled executor.
pub struct WorkerServer {
    pub(crate) listener: TcpListener,
}

impl WorkerServer {
    /// Binds the worker to `addr` (use port 0 for an OS-assigned port).
    ///
    /// # Errors
    ///
    /// Any socket error.
    pub fn bind(addr: &str) -> io::Result<Self> {
        Ok(WorkerServer {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound socket address.
    ///
    /// # Errors
    ///
    /// Any socket error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Prints the [`LISTENING_PREFIX`] readiness line spawn helpers wait
    /// for.
    ///
    /// # Errors
    ///
    /// Any socket error resolving the bound address.
    pub fn announce(&self) -> io::Result<()> {
        println!("{LISTENING_PREFIX}{}", self.local_addr()?);
        // The line must be visible to a parent reading our piped stdout
        // before we block in accept.
        io::stdout().flush()
    }

    /// Serves coordinators with default service options: concurrent
    /// sessions (up to [`crate::DEFAULT_MAX_CLIENTS`]) share one
    /// fairly-scheduled executor, each task answered with a `TaskDone`
    /// (or `Error`) frame. A coordinator hang-up ends only its session; a
    /// `Shutdown` frame drains the service and returns from this function
    /// once the last session closes. See [`WorkerServer::serve_with`] for
    /// the accept gate, status loop, and returned per-client stats.
    ///
    /// # Errors
    ///
    /// Only listener-level failures; per-connection errors are reported
    /// to stderr and the worker keeps serving.
    pub fn serve(&self, resolve: &ProgramResolver<'_>) -> Result<(), WireError> {
        self.serve_with(resolve, &crate::ServeOptions::default())
            .map(|_stats| ())
    }
}

/// The worker's half of an established coordinator conversation: task
/// frames are served, `Shutdown` returns `Ok(true)`, a hang-up returns
/// `Ok(false)`. Used by the outbound [`join_coordinator`] — a joiner's
/// dialect is the single-conversation one (no session hello: admission
/// happened through `Register`/`Welcome`, and the dialled coordinator is
/// by construction this connection's only tenant). The listening
/// [`WorkerServer`] instead serves sessions through [`crate::service`].
fn serve_conversation(conn: &mut Conn, resolve: &ProgramResolver<'_>) -> Result<bool, WireError> {
    loop {
        // Idle: block indefinitely for the coordinator's next frame
        // (clearing any poll timeout a previous task left behind).
        conn.set_read_timeout(None)?;
        let message = match conn.recv() {
            Err(WireError::Disconnected) => return Ok(false),
            other => other?,
        };
        match message {
            Message::Task(task) => match serve_task(conn, &task, resolve) {
                Ok(reply) => conn.send(&reply)?,
                // The coordinator vanished mid-task; back to accept.
                Err(WireError::Disconnected) => return Ok(false),
                Err(e) => return Err(e),
            },
            Message::Shutdown => return Ok(true),
            // A Cancel can race a task completion and arrive while
            // the worker is idle again; there is nothing to cancel.
            Message::Cancel => {}
            Message::Heartbeat
            | Message::TaskDone { .. }
            | Message::Error(_)
            | Message::Register { .. }
            | Message::Welcome { .. }
            | Message::ClientHello { .. }
            | Message::ClientAccept { .. } => return Err(WireError::UnexpectedMessage("result")),
        }
    }
}

/// Joins a *running* campaign as a worker: connects to the coordinator's
/// join listener, sends `Register`, waits for the `Welcome` (pre-warming
/// the announced program), then serves tasks exactly like a pre-listed
/// worker until the coordinator shuts the connection down. Exposed on
/// the CLI as `symplfied serve --join <addr>`.
///
/// Returns once the campaign releases the worker — a `Shutdown` frame
/// and a coordinator hang-up are both clean ends (the campaign is simply
/// over).
///
/// # Errors
///
/// Connection/handshake failures, a coordinator that answers the
/// `Register` with anything but `Welcome`, or a mid-conversation
/// protocol error.
pub fn join_coordinator(
    addr: &str,
    worker_label: &str,
    resolve: &ProgramResolver<'_>,
) -> Result<(), WireError> {
    let stream = TcpStream::connect(addr).map_err(WireError::from)?;
    let mut conn = Conn::establish(stream)?;
    conn.send(&Message::Register {
        worker: worker_label.to_owned(),
    })?;
    conn.set_read_timeout(Some(Duration::from_secs(30)))?;
    match conn.recv()? {
        Message::Welcome { program_id, .. } => {
            // Pre-warm: resolve and decode the campaign's program before
            // the first task frame arrives. Purely an optimisation — every
            // task frame still carries the digest the worker verifies.
            if let Some((program, _)) = resolve(&program_id) {
                let _ = program.decoded();
            }
        }
        _ => return Err(WireError::UnexpectedMessage("welcome")),
    }
    serve_conversation(&mut conn, resolve).map(|_shutdown| ())
}

/// Asks the worker service at `addr` to drain: connects, sends a bare
/// `Shutdown` frame, and hangs up. The service stops admitting new
/// clients immediately and exits once its last active session finishes —
/// in-flight campaigns complete undisturbed. The fleet-sharing demos and
/// operator tooling use this to retire a worker no single coordinator
/// owns (a coordinator's own `shutdown_workers` option drains the fleet
/// through its session instead).
///
/// # Errors
///
/// Connection or preamble-handshake failures.
pub fn shutdown_worker(addr: &str) -> Result<(), WireError> {
    let stream = TcpStream::connect(addr).map_err(WireError::from)?;
    let mut conn = Conn::establish(stream)?;
    conn.send(&Message::Shutdown)
}

/// Runs one task frame on a supervised thread, heartbeating the
/// coordinator at the frame's cadence and honouring `Cancel` frames
/// between injection points. Returns the reply to send; an `Err` means
/// the connection itself failed.
fn serve_task(
    conn: &mut Conn,
    task: &TaskFrame,
    resolve: &ProgramResolver<'_>,
) -> Result<Message, WireError> {
    let Some((program, detectors)) = resolve(&task.program_id) else {
        return Ok(Message::Error(format!(
            "unknown program id `{}`",
            task.program_id
        )));
    };
    // Decode once per task frame: the whole task runs against this one
    // cached IR, so resolve-then-decode is the only lowering that happens.
    let _ = program.decoded();
    let digest = program_digest(&program);
    if digest != task.program_digest {
        return Ok(Message::Error(format!(
            "program digest mismatch for `{}`: this worker has a different revision",
            task.program_id
        )));
    }
    let config = ClusterConfig {
        workers: 1,
        tasks: 1,
        search: task.search.clone(),
        task_budget: task.task_budget,
        max_findings_per_task: task.max_findings,
        point_workers_hint: Some(task.point_workers.max(1)),
    };
    let interval = task.heartbeat_interval.max(MIN_HEARTBEAT_INTERVAL);

    let cancel = AtomicBool::new(false);
    let mut cancelled_by_frame = false;
    let mut connection_error: Option<WireError> = None;
    let outcome = std::thread::scope(|scope| {
        let cancel = &cancel;
        let handle = scope.spawn(|| {
            catch_unwind(AssertUnwindSafe(|| {
                // No memo store on the wire path yet: a worker process
                // serves many campaigns, and the store is keyed per
                // (program, detectors) — a per-worker cache would need
                // lifecycle management the protocol does not carry.
                run_task_spec_with_cancel(
                    &program,
                    &detectors,
                    &task.input,
                    &task.spec,
                    &task.predicate,
                    &config,
                    cancel,
                    None,
                )
            }))
        });
        let mut last_beat = Instant::now();
        while !handle.is_finished() {
            if last_beat.elapsed() >= interval {
                if let Err(e) = conn.send(&Message::Heartbeat) {
                    // The coordinator is gone; stop the task promptly
                    // rather than burn the box on an unwanted search.
                    cancel.store(true, Ordering::Relaxed);
                    connection_error = Some(e);
                    break;
                }
                last_beat = Instant::now();
            }
            match conn.poll_recv(interval / 4, Duration::from_secs(5)) {
                Ok(Some(Message::Cancel)) => {
                    cancel.store(true, Ordering::Relaxed);
                    cancelled_by_frame = true;
                }
                Ok(Some(_)) => {
                    cancel.store(true, Ordering::Relaxed);
                    connection_error = Some(WireError::UnexpectedMessage("mid-task frame"));
                    break;
                }
                Ok(None) => {}
                Err(e) => {
                    cancel.store(true, Ordering::Relaxed);
                    connection_error = Some(e);
                    break;
                }
            }
        }
        handle.join()
    });
    if let Some(e) = connection_error {
        return Err(e);
    }
    match outcome {
        Err(_) | Ok(Err(_)) => Ok(Message::Error(
            "task panicked on the worker; the campaign can re-queue it elsewhere".into(),
        )),
        Ok(Ok((result, findings))) => {
            if cancelled_by_frame && !result.completed {
                Ok(Message::Error("task cancelled by the coordinator".into()))
            } else {
                Ok(Message::TaskDone { result, findings })
            }
        }
    }
}

/// A campaign to distribute: the same inputs [`sympl_cluster::run_cluster`]
/// takes, plus the program id remote workers resolve. The coordinator
/// never runs a search itself — the program is only needed to compute the
/// digest workers verify against.
pub struct CampaignJob<'a> {
    /// The campaign's program (digested into every task frame).
    pub program: &'a Program,
    /// The id workers resolve (a bundled workload name, e.g. `"tcas"`).
    pub program_id: &'a str,
    /// The campaign's input stream.
    pub input: &'a [i64],
    /// The injection campaign to shard.
    pub campaign: &'a Campaign,
    /// The outcome predicate (must be wire-encodable).
    pub predicate: &'a Predicate,
    /// Budgets and sharding — `workers` is ignored (the worker list
    /// plays that role); everything else means what it means in-process.
    pub config: &'a ClusterConfig,
}

/// Test-only failure hooks threaded through [`DistOptions`]; all `None`
/// in production. See the [`crate::chaos`] module for the network-level
/// injector these compose with.
#[derive(Default)]
pub struct ChaosPlan<'a> {
    /// Abort the coordinator (as if it crashed) once this many task
    /// results have been pooled — deterministic stand-in for a SIGKILL'd
    /// coordinator, used by the checkpoint/resume acceptance tests. The
    /// run fails with [`WireError::CoordinatorAborted`]; workers are NOT
    /// shut down, so a resume leg can reuse them.
    pub abort_after_results: Option<usize>,
    /// Called with the running completed-result count after each pooled
    /// result — the kill-a-worker-mid-campaign tests use it to SIGKILL a
    /// loopback worker at a deterministic point in the run.
    pub on_result: Option<&'a (dyn Fn(usize) + Sync)>,
    /// Called exactly once, when the completed-result count first reaches
    /// the threshold — the elastic acceptance legs use it to launch
    /// late-joining workers at a deterministic point in the run
    /// (deterministic in campaign progress, that is; the join itself
    /// still races the remaining work, which is the point).
    pub delayed_join: Option<(usize, &'a (dyn Fn() + Sync))>,
}

/// Coordinator options beyond the worker list.
pub struct DistOptions<'a> {
    /// Send each surviving worker a `Shutdown` frame once the queue
    /// drains (the loopback self-spawn mode uses it so worker processes
    /// exit cleanly).
    pub shutdown_workers: bool,
    /// The heartbeat cadence workers are asked for (clamped to
    /// [`MIN_HEARTBEAT_INTERVAL`]); the liveness deadline is derived from
    /// it via [`liveness_deadline`].
    pub heartbeat_interval: Duration,
    /// Append every completed task to a checkpoint file at this path
    /// (created/truncated at start, carried-over resume entries
    /// rewritten first).
    pub checkpoint: Option<&'a Path>,
    /// Seed completed tasks from this checkpoint file and re-queue only
    /// the missing shards. The checkpoint's campaign key must match this
    /// job's ([`WireError::StaleCheckpoint`] otherwise).
    pub resume: Option<&'a Path>,
    /// Accept late-joining workers on this listener for the duration of
    /// the campaign: a `Register` frame admits the connection into the
    /// same queue/results machinery as the pre-listed workers. The
    /// listener is switched to non-blocking and polled; it outlives the
    /// run (the caller owns it).
    pub join_listener: Option<&'a TcpListener>,
    /// Let idle workers trigger wire-level shard splitting: when the
    /// queue is empty but shards are in flight, the largest in-flight
    /// shard is cancelled, halved via [`sympl_cluster::split_spec`], and
    /// both halves re-queued (down to [`MAX_SPLIT_DEPTH`]). Only honoured
    /// when [`sympl_cluster::split_preserves_outcome`] holds for every
    /// shard — otherwise splitting could move the outcome digest, and the
    /// option is ignored with a warning.
    pub split_idle: bool,
    /// The label this coordinator announces in its `ClientHello` to each
    /// worker's campaign service — free-form, for the service's logs and
    /// per-client stats (never the campaign key or outcome digest).
    /// `None` announces `coordinator-pid<pid>`.
    pub client_label: Option<String>,
    /// The scheduling weight announced in the `ClientHello`: a
    /// backlogged client receives this many task slots per service
    /// scheduler round (clamped to ≥ 1; the default 1 shares equally).
    pub client_priority: u64,
    /// Test-only failure injection.
    pub chaos: ChaosPlan<'a>,
}

impl Default for DistOptions<'_> {
    fn default() -> Self {
        DistOptions {
            shutdown_workers: false,
            heartbeat_interval: DEFAULT_HEARTBEAT_INTERVAL,
            checkpoint: None,
            resume: None,
            join_listener: None,
            split_idle: false,
            client_label: None,
            client_priority: 1,
            chaos: ChaosPlan::default(),
        }
    }
}

/// A queued task: its spec, the contiguous range of the *parent* shard's
/// point list it covers (the whole list for an unsplit shard), its split
/// depth, how many workers have already failed it, and the deterministic
/// earliest instant it may be handed out again ([`backoff_delay`]).
struct QueuedTask {
    spec: TaskSpec,
    /// `[start, end)` offsets into the parent shard's original point
    /// list. Split halves carry the parent's id; the range is what lets
    /// the coordinator re-assemble them in canonical order.
    range: (usize, usize),
    /// How many times this entry's ancestry has been halved.
    depth: usize,
    attempts: usize,
    ready_at: Instant,
}

enum Popped {
    Ready(QueuedTask),
    /// Tasks exist but all are still backing off.
    Delayed,
    Empty,
}

fn pop_task(queue: &Mutex<VecDeque<QueuedTask>>, in_flight: &AtomicUsize) -> Popped {
    let mut q = lock_recovering(queue);
    if q.is_empty() {
        return Popped::Empty;
    }
    let now = Instant::now();
    let Some(idx) = q.iter().position(|t| t.ready_at <= now) else {
        return Popped::Delayed;
    };
    let task = q.remove(idx).expect("position() index in bounds");
    // Under the queue lock, so an observer can never see "queue empty and
    // nothing in flight" while this task is still going to come back.
    in_flight.fetch_add(1, Ordering::SeqCst);
    Popped::Ready(task)
}

/// Per-connection membership state the coordinator's split logic reads:
/// what the worker is chewing on (so an idle peer can pick the biggest
/// victim) and the one-shot split request flag the dispatch loop polls.
#[derive(Default)]
struct WorkerSlot {
    /// Points in the worker's in-flight task; 0 when idle.
    in_flight_points: AtomicUsize,
    /// Split depth of the in-flight task.
    in_flight_depth: AtomicUsize,
    /// Set by an idle worker to ask this one to give up half its shard.
    split_requested: AtomicBool,
    /// The connection is gone; never pick this slot again.
    gone: AtomicBool,
}

/// A completed split part, keyed in the assembly map by its start offset:
/// `(end, result, findings)`.
type PartEntry = (usize, TaskResult, Vec<Finding>);

/// Everything the coordinator's worker threads share. Pre-listed
/// connections and late joiners run the identical [`Self::worker_loop`];
/// membership only changes who is pulling from the queue, never what the
/// merged report contains.
struct Coordinator<'a> {
    job: &'a CampaignJob<'a>,
    opts: &'a DistOptions<'a>,
    digest: u128,
    point_workers: usize,
    heartbeat_interval: Duration,
    liveness: Duration,
    split_enabled: bool,
    /// Pre-listed worker count (the retry budget's base; joiners extend
    /// it, so a campaign that grew can tolerate more failures per task).
    base_workers: usize,
    /// Original point count of each shard, by task id.
    task_points: Vec<usize>,
    queue: Mutex<VecDeque<QueuedTask>>,
    /// Completed split parts awaiting their siblings: task id → start
    /// offset → part. A shard leaves this map the moment its parts cover
    /// `[0, task_points[id])` contiguously, merged in offset order.
    parts: Mutex<HashMap<usize, BTreeMap<usize, PartEntry>>>,
    results: Mutex<Vec<(TaskResult, Vec<Finding>)>>,
    writer: Mutex<Option<CheckpointWriter>>,
    fatal: Mutex<Option<WireError>>,
    abort: AtomicBool,
    /// The queue drained with nothing in flight: joiner admission stops.
    finished: AtomicBool,
    delayed_join_fired: AtomicBool,
    in_flight: AtomicUsize,
    completed: AtomicUsize,
    tasks_retried: AtomicUsize,
    workers_lost: AtomicUsize,
    workers_joined: AtomicUsize,
    tasks_split: AtomicUsize,
    /// Worker threads alive (connected or still connecting) — the accept
    /// thread's liveness signal.
    active_workers: AtomicUsize,
    membership: Mutex<Vec<Arc<WorkerSlot>>>,
}

impl Coordinator<'_> {
    fn add_slot(&self) -> Arc<WorkerSlot> {
        let slot = Arc::new(WorkerSlot::default());
        lock_recovering(&self.membership).push(Arc::clone(&slot));
        slot
    }

    /// A task that failed on this many workers is declared poisonous and
    /// aborts the campaign instead of cycling forever. Read at failure
    /// time: a fleet that grew mid-campaign has more distinct workers a
    /// task could still succeed on.
    fn max_attempts(&self) -> usize {
        (self.base_workers + self.workers_joined.load(Ordering::Relaxed)).max(1)
    }

    /// Picks the busiest splittable in-flight shard and asks its worker
    /// to give half up. Called by idle workers; at most one outstanding
    /// request per victim.
    fn request_split(&self) {
        let membership = lock_recovering(&self.membership);
        let victim = membership
            .iter()
            .filter(|s| {
                !s.gone.load(Ordering::Relaxed) && !s.split_requested.load(Ordering::Relaxed)
            })
            .filter(|s| {
                s.in_flight_points.load(Ordering::Relaxed) >= 2
                    && s.in_flight_depth.load(Ordering::Relaxed) < MAX_SPLIT_DEPTH
            })
            .max_by_key(|s| s.in_flight_points.load(Ordering::Relaxed));
        if let Some(victim) = victim {
            victim.split_requested.store(true, Ordering::Relaxed);
        }
    }

    /// Accepts `Register` connections for the duration of the campaign,
    /// spawning an ordinary worker loop per admitted joiner on the same
    /// scope as the pre-listed workers.
    fn accept_joiners<'s>(&'s self, scope: &'s std::thread::Scope<'s, '_>, listener: &TcpListener) {
        if let Err(e) = listener.set_nonblocking(true) {
            eprintln!("sympl-wire coordinator: join listener unusable: {e}");
            return;
        }
        let mut no_workers_since: Option<Instant> = None;
        loop {
            if self.finished.load(Ordering::Relaxed) || self.abort.load(Ordering::Relaxed) {
                return;
            }
            // All workers gone and none joining: give a departed fleet one
            // liveness window to be replaced, then stop so the campaign
            // can fail with `NoWorkersLeft` instead of waiting forever.
            if self.active_workers.load(Ordering::SeqCst) == 0 {
                let since = *no_workers_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= self.liveness {
                    return;
                }
            } else {
                no_workers_since = None;
            }
            match listener.accept() {
                Ok((stream, peer)) => match self.admit(stream) {
                    Ok(conn) => {
                        self.workers_joined.fetch_add(1, Ordering::Relaxed);
                        self.active_workers.fetch_add(1, Ordering::SeqCst);
                        let slot = self.add_slot();
                        let label = format!("joined worker {peer}");
                        scope.spawn(move || {
                            self.worker_loop(conn, &slot, &label);
                            self.active_workers.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    // A malformed preamble, version mismatch, or a frame
                    // other than Register: refuse this connection, keep
                    // the listener.
                    Err(e) => {
                        eprintln!("sympl-wire coordinator: join from {peer} refused: {e}");
                    }
                },
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(IDLE_POLL);
                }
                Err(e) => {
                    eprintln!("sympl-wire coordinator: join listener failed: {e}");
                    return;
                }
            }
        }
    }

    /// Handshakes a join connection and runs the admission exchange:
    /// expect `Register`, answer `Welcome` with the campaign's program
    /// identity.
    fn admit(&self, stream: TcpStream) -> Result<Conn, WireError> {
        let mut conn = Conn::establish(stream)?;
        conn.set_read_timeout(Some(Duration::from_secs(5)))?;
        match conn.recv()? {
            Message::Register { worker } => {
                eprintln!("sympl-wire coordinator: admitted worker `{worker}`");
            }
            _ => return Err(WireError::UnexpectedMessage("register")),
        }
        conn.send(&Message::Welcome {
            program_id: self.job.program_id.to_owned(),
            program_digest: self.digest,
        })?;
        conn.set_read_timeout(None)?;
        Ok(conn)
    }

    /// One worker connection's dispatch loop — identical for pre-listed
    /// workers and admitted joiners.
    fn worker_loop(&self, mut conn: Conn, slot: &WorkerSlot, label: &str) {
        loop {
            if self.abort.load(Ordering::Relaxed) {
                slot.gone.store(true, Ordering::Relaxed);
                return;
            }
            let task = match pop_task(&self.queue, &self.in_flight) {
                Popped::Ready(task) => task,
                Popped::Delayed => {
                    std::thread::sleep(IDLE_POLL);
                    continue;
                }
                Popped::Empty => {
                    if self.in_flight.load(Ordering::SeqCst) > 0 {
                        // Another worker may yet fail and re-queue its
                        // task — stay available, and if splitting is on,
                        // ask the biggest in-flight shard to share.
                        if self.split_enabled {
                            self.request_split();
                        }
                        std::thread::sleep(IDLE_POLL);
                        continue;
                    }
                    self.finished.store(true, Ordering::Relaxed);
                    slot.gone.store(true, Ordering::Relaxed);
                    if self.opts.shutdown_workers {
                        let _ = conn.send(&Message::Shutdown);
                    }
                    return;
                }
            };
            let splittable =
                self.split_enabled && task.spec.points.len() >= 2 && task.depth < MAX_SPLIT_DEPTH;
            slot.in_flight_points
                .store(task.spec.points.len(), Ordering::Relaxed);
            slot.in_flight_depth.store(task.depth, Ordering::Relaxed);
            // A panicking dispatch degrades this worker (its task is
            // re-queued below) instead of crashing the coordinator with a
            // poisoned lock.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                dispatch_task(
                    &mut conn,
                    self.job,
                    self.digest,
                    self.point_workers,
                    &task.spec,
                    self.heartbeat_interval,
                    self.liveness,
                    &self.abort,
                    slot,
                    splittable,
                )
            }))
            .unwrap_or_else(|_| {
                Err(WireError::Io(io::Error::other(
                    "coordinator dispatch thread panicked",
                )))
            });
            slot.in_flight_points.store(0, Ordering::Relaxed);
            slot.split_requested.store(false, Ordering::Relaxed);
            match outcome {
                Ok(DispatchOutcome::Done(result, findings)) => {
                    self.complete(&task, result, findings);
                    self.in_flight.fetch_sub(1, Ordering::SeqCst);
                }
                Ok(DispatchOutcome::SplitCancelled) => {
                    self.requeue_halves(task);
                    self.in_flight.fetch_sub(1, Ordering::SeqCst);
                }
                Err(e) => {
                    if self.abort.load(Ordering::Relaxed) {
                        // The campaign is aborting; nothing to re-queue
                        // for.
                        self.in_flight.fetch_sub(1, Ordering::SeqCst);
                        slot.gone.store(true, Ordering::Relaxed);
                        return;
                    }
                    if task.attempts + 1 >= self.max_attempts() {
                        *lock_recovering(&self.fatal) = Some(e);
                        self.abort.store(true, Ordering::Relaxed);
                    } else {
                        let attempts = task.attempts + 1;
                        let delay = backoff_delay(attempts);
                        eprintln!(
                            "sympl-wire coordinator: worker {label} failed task {} \
                             (attempt {attempts}): {e}; re-queueing after {delay:?}",
                            task.spec.id,
                        );
                        lock_recovering(&self.queue).push_front(QueuedTask {
                            ready_at: Instant::now() + delay,
                            attempts,
                            ..task
                        });
                        self.tasks_retried.fetch_add(1, Ordering::Relaxed);
                        self.workers_lost.fetch_add(1, Ordering::Relaxed);
                    }
                    // Re-queue before the decrement (see in_flight above),
                    // then abandon this connection; the rest of the queue
                    // is the other workers'.
                    self.in_flight.fetch_sub(1, Ordering::SeqCst);
                    slot.gone.store(true, Ordering::Relaxed);
                    return;
                }
            }
        }
    }

    /// Splits a cancelled task's spec in two and re-queues both halves at
    /// the front of the queue — the requesting idle worker grabs one, the
    /// cancelled worker's loop comes back for the other.
    fn requeue_halves(&self, task: QueuedTask) {
        match split_spec(&task.spec) {
            Some((left, right)) => {
                let mid = task.range.0 + left.points.len();
                let now = Instant::now();
                {
                    let mut q = lock_recovering(&self.queue);
                    q.push_front(QueuedTask {
                        spec: right,
                        range: (mid, task.range.1),
                        depth: task.depth + 1,
                        attempts: task.attempts,
                        ready_at: now,
                    });
                    q.push_front(QueuedTask {
                        spec: left,
                        range: (task.range.0, mid),
                        depth: task.depth + 1,
                        attempts: task.attempts,
                        ready_at: now,
                    });
                }
                self.tasks_split.fetch_add(1, Ordering::Relaxed);
            }
            // A stale split request on an unsplittable task: just put it
            // back whole.
            None => lock_recovering(&self.queue).push_front(task),
        }
    }

    /// Books a finished dispatch: a whole shard finalizes directly; a
    /// split part waits in the assembly map until its siblings cover the
    /// parent's full point range, then the parts merge (in offset order —
    /// canonical point order) and finalize as one shard.
    fn complete(&self, task: &QueuedTask, result: TaskResult, findings: Vec<Finding>) {
        let id = task.spec.id;
        let total = self.task_points[id];
        if task.range == (0, total) {
            self.finalize(result, findings);
            return;
        }
        let merged = {
            let mut parts = lock_recovering(&self.parts);
            let entry = parts.entry(id).or_default();
            // First writer wins per range start: duplicate delivery (or a
            // cancelled-then-retried part) can never double-count.
            entry
                .entry(task.range.0)
                .or_insert((task.range.1, result, findings));
            let mut cursor = 0usize;
            while let Some(&(end, ..)) = entry.get(&cursor) {
                cursor = end;
            }
            if cursor == total {
                parts.remove(&id)
            } else {
                None
            }
        };
        if let Some(map) = merged {
            let parts: Vec<_> = map.into_values().map(|(_, r, f)| (r, f)).collect();
            if let Some((result, findings)) = merge_part_results(parts) {
                self.finalize(result, findings);
            }
        }
    }

    /// Checkpoints, pools, and counts one completed shard, firing the
    /// chaos hooks that key off campaign progress.
    fn finalize(&self, result: TaskResult, findings: Vec<Finding>) {
        {
            let mut w = lock_recovering(&self.writer);
            if let Some(writer) = w.as_mut() {
                if let Err(e) = writer.append(&result, &findings) {
                    eprintln!(
                        "sympl-wire coordinator: checkpoint append failed ({e}); \
                         checkpointing disabled"
                    );
                    *w = None;
                }
            }
        }
        lock_recovering(&self.results).push((result, findings));
        let n = self.completed.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(on_result) = self.opts.chaos.on_result {
            on_result(n);
        }
        if let Some((threshold, hook)) = self.opts.chaos.delayed_join {
            if n >= threshold && !self.delayed_join_fired.swap(true, Ordering::Relaxed) {
                hook();
            }
        }
        if self
            .opts
            .chaos
            .abort_after_results
            .is_some_and(|cap| n >= cap)
            && !self.abort.swap(true, Ordering::Relaxed)
        {
            *lock_recovering(&self.fatal) = Some(WireError::CoordinatorAborted { completed: n });
        }
    }
}

/// Runs a campaign across remote workers with default options — the
/// supervision layer (heartbeats, liveness, deterministic backoff,
/// graceful degradation) is always on; checkpointing and chaos are not.
/// See [`run_distributed_with`].
///
/// # Errors
///
/// Those of [`run_distributed_with`].
pub fn run_distributed(
    job: &CampaignJob<'_>,
    workers_at: &[String],
    shutdown_workers: bool,
) -> Result<CampaignReport, WireError> {
    run_distributed_with(
        job,
        workers_at,
        &DistOptions {
            shutdown_workers,
            ..DistOptions::default()
        },
    )
}

/// Runs a campaign across remote workers, returning the same
/// [`CampaignReport`] an in-process [`sympl_cluster::run_cluster`] with
/// the same config produces (wall-clock and scheduling-telemetry fields
/// aside; see the crate docs' determinism contract) — including a run
/// resumed from a checkpoint, whose merged report's
/// [`CampaignReport::outcome_digest`] is identical to an uninterrupted
/// run's.
///
/// # Errors
///
/// [`WireError::NoWorkersLeft`] when tasks remain but every worker
/// connection failed, died, or exhausted its retries; the fatal error of
/// a task that failed on every worker; [`WireError::StaleCheckpoint`] /
/// checkpoint parse errors when resuming; [`WireError::CoordinatorAborted`]
/// from the chaos plan; never a partial report.
pub fn run_distributed_with(
    job: &CampaignJob<'_>,
    workers_at: &[String],
    opts: &DistOptions<'_>,
) -> Result<CampaignReport, WireError> {
    let start = Instant::now();
    let digest = program_digest(job.program);
    let point_workers = job.config.point_share();
    let heartbeat_interval = opts.heartbeat_interval.max(MIN_HEARTBEAT_INTERVAL);
    let liveness = liveness_deadline(heartbeat_interval);

    let specs = shard_specs(job.campaign, job.config.tasks);
    let tasks_total = specs.len();

    // Resume: seed completed tasks from the checkpoint, keyed so a
    // checkpoint from a different program/config/campaign is refused.
    let key = if opts.checkpoint.is_some() || opts.resume.is_some() {
        Some(campaign_key(job)?)
    } else {
        None
    };
    let mut seeded: Vec<(TaskResult, Vec<Finding>)> = Vec::new();
    if let Some(path) = opts.resume {
        let file = load_checkpoint(path)?;
        let key = key.expect("resume implies a campaign key");
        if file.key != key {
            return Err(WireError::StaleCheckpoint(format!(
                "campaign key mismatch (checkpoint {:032x}, this campaign {:032x})",
                file.key, key
            )));
        }
        if file.tasks_total != tasks_total {
            return Err(WireError::StaleCheckpoint(format!(
                "shard count mismatch (checkpoint {}, this campaign {tasks_total})",
                file.tasks_total
            )));
        }
        let mut have = vec![false; tasks_total];
        for (result, findings) in file.entries {
            if result.id < tasks_total && !have[result.id] {
                have[result.id] = true;
                seeded.push((result, findings));
            }
        }
    }
    let resumed_tasks = seeded.len();
    let done = {
        let mut done = vec![false; tasks_total];
        for (result, _) in &seeded {
            done[result.id] = true;
        }
        done
    };

    let writer: Mutex<Option<CheckpointWriter>> = Mutex::new(match opts.checkpoint {
        Some(path) => {
            let mut w =
                CheckpointWriter::create(path, key.expect("checkpoint implies key"), tasks_total)?;
            // Carried-over entries are rewritten so the new file is
            // self-contained.
            for (result, findings) in &seeded {
                w.append(result, findings)?;
            }
            Some(w)
        }
        None => None,
    });

    // The original point count of every shard, by task id — what the
    // part-assembly map checks contiguous coverage against.
    let task_points: Vec<usize> = specs.iter().map(|s| s.points.len()).collect();

    // Splitting is only exactness-preserving when the finding cap can
    // never bind and there is no wall-clock task budget; otherwise the
    // digest could move with the split schedule, so the option is refused
    // wholesale (any sub-range of a shard that passes the gate passes it
    // too, so the guarantee survives recursive splitting).
    let split_enabled = opts.split_idle && {
        let ok = specs
            .iter()
            .all(|spec| split_preserves_outcome(spec, job.config));
        if !ok {
            eprintln!(
                "sympl-wire coordinator: --split-idle ignored (a task budget or a \
                 binding finding cap makes shard splitting outcome-changing)"
            );
        }
        ok
    };

    let co = Coordinator {
        job,
        opts,
        digest,
        point_workers,
        heartbeat_interval,
        liveness,
        split_enabled,
        base_workers: workers_at.len(),
        task_points,
        queue: Mutex::new(
            specs
                .into_iter()
                .filter(|spec| !done[spec.id])
                .map(|spec| QueuedTask {
                    range: (0, spec.points.len()),
                    spec,
                    depth: 0,
                    attempts: 0,
                    ready_at: start,
                })
                .collect(),
        ),
        parts: Mutex::new(HashMap::new()),
        results: Mutex::new(seeded),
        writer,
        fatal: Mutex::new(None),
        abort: AtomicBool::new(false),
        finished: AtomicBool::new(false),
        delayed_join_fired: AtomicBool::new(false),
        in_flight: AtomicUsize::new(0),
        completed: AtomicUsize::new(resumed_tasks),
        tasks_retried: AtomicUsize::new(0),
        workers_lost: AtomicUsize::new(0),
        workers_joined: AtomicUsize::new(0),
        tasks_split: AtomicUsize::new(0),
        active_workers: AtomicUsize::new(0),
        membership: Mutex::new(Vec::new()),
    };

    // The session identity announced to each worker's campaign service.
    // One campaign, one label — every per-worker connection belongs to
    // the same logical client.
    let client_label = opts
        .client_label
        .clone()
        .unwrap_or_else(|| format!("coordinator-pid{}", std::process::id()));
    let client_priority = opts.client_priority.max(1);

    std::thread::scope(|scope| {
        let co = &co;
        let client_label = client_label.as_str();
        for addr in workers_at {
            co.active_workers.fetch_add(1, Ordering::SeqCst);
            scope.spawn(move || {
                match TcpStream::connect(addr.as_str())
                    .map_err(WireError::from)
                    .and_then(Conn::establish)
                    .and_then(|mut conn| {
                        client_handshake(&mut conn, client_label, client_priority, co.liveness)?;
                        Ok(conn)
                    }) {
                    Ok(conn) => {
                        let slot = co.add_slot();
                        co.worker_loop(conn, &slot, addr);
                    }
                    Err(e) => {
                        eprintln!("sympl-wire coordinator: cannot reach worker {addr}: {e}");
                        co.workers_lost.fetch_add(1, Ordering::Relaxed);
                    }
                }
                co.active_workers.fetch_sub(1, Ordering::SeqCst);
            });
        }
        if let Some(listener) = opts.join_listener {
            scope.spawn(move || co.accept_joiners(scope, listener));
        }
    });

    if let Some(err) = co
        .fatal
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        return Err(err);
    }
    let pending = co
        .queue
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .len();
    if pending > 0 {
        return Err(WireError::NoWorkersLeft { pending });
    }
    let lost = co.workers_lost.load(Ordering::Relaxed);
    let mut report = pool_results(
        co.results
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner),
        start.elapsed(),
    );
    report.degraded = lost > 0;
    report.workers_lost = lost;
    report.tasks_retried = co.tasks_retried.load(Ordering::Relaxed);
    report.resumed_tasks = resumed_tasks;
    report.workers_joined = co.workers_joined.load(Ordering::Relaxed);
    report.tasks_split = co.tasks_split.load(Ordering::Relaxed);
    Ok(report)
}

/// The coordinator's half of the v4 session hello: announce a client
/// label + scheduling priority, wait (boundedly) for the service's
/// `ClientAccept`. A typed `Error` answer — the service's capacity
/// refusal — surfaces as [`WireError::Remote`], so a full fleet fails
/// the connection loudly instead of hanging the campaign.
fn client_handshake(
    conn: &mut Conn,
    label: &str,
    priority: u64,
    liveness: Duration,
) -> Result<(), WireError> {
    conn.send(&Message::ClientHello {
        client: label.to_owned(),
        priority: priority.max(1),
    })?;
    conn.set_read_timeout(Some(liveness.max(Duration::from_secs(5))))?;
    match conn.recv()? {
        Message::ClientAccept { .. } => {
            conn.set_read_timeout(None)?;
            Ok(())
        }
        Message::Error(msg) => Err(WireError::Remote(msg)),
        _ => Err(WireError::UnexpectedMessage("client accept")),
    }
}

/// Why a `Cancel` frame went out mid-dispatch: a campaign abort discards
/// the task; a split request wants the worker's shard back to halve it.
#[derive(Clone, Copy, PartialEq)]
enum CancelReason {
    Abort,
    Split,
}

/// What one supervised dispatch produced.
enum DispatchOutcome {
    /// The worker answered `TaskDone` (possibly racing a split request —
    /// a completed shard beats a split, so the result stands).
    Done(TaskResult, Vec<Finding>),
    /// The worker acknowledged a split-`Cancel`: its partial work is
    /// discarded and the shard's points are free to re-queue as halves.
    SplitCancelled,
}

/// Sends one task to a worker and supervises it to completion: heartbeats
/// re-arm the liveness deadline, silence past it fails the connection,
/// a campaign abort sends `Cancel` and waits (boundedly) for the worker
/// to acknowledge, and — when `splittable` — a split request on `slot`
/// sends the same `Cancel` to reclaim the shard for halving.
#[allow(clippy::too_many_arguments)]
fn dispatch_task(
    conn: &mut Conn,
    job: &CampaignJob<'_>,
    digest: u128,
    point_workers: usize,
    spec: &TaskSpec,
    heartbeat_interval: Duration,
    liveness: Duration,
    abort: &AtomicBool,
    slot: &WorkerSlot,
    splittable: bool,
) -> Result<DispatchOutcome, WireError> {
    conn.send(&Message::Task(TaskFrame {
        program_id: job.program_id.to_owned(),
        program_digest: digest,
        input: job.input.to_vec(),
        spec: spec.clone(),
        predicate: job.predicate.clone(),
        search: job.config.search.clone(),
        task_budget: job.config.task_budget,
        max_findings: job.config.max_findings_per_task,
        point_workers,
        heartbeat_interval,
    }))?;
    let poll = (liveness / 8).clamp(Duration::from_millis(5), Duration::from_millis(100));
    let mut last_signal = Instant::now();
    let mut cancel_sent: Option<(Instant, CancelReason)> = None;
    loop {
        if cancel_sent.is_none() {
            // An abort outranks a split: both send Cancel, but an abort
            // discards the answer while a split re-queues the points.
            if abort.load(Ordering::Relaxed) {
                conn.send(&Message::Cancel)?;
                cancel_sent = Some((Instant::now(), CancelReason::Abort));
            } else if splittable && slot.split_requested.load(Ordering::Relaxed) {
                conn.send(&Message::Cancel)?;
                cancel_sent = Some((Instant::now(), CancelReason::Split));
            }
        }
        if let Some((sent, _)) = cancel_sent {
            // Bounded wait for the worker's acknowledgement, heartbeats
            // notwithstanding — the abort must not block on a wedged peer.
            if sent.elapsed() >= liveness {
                return Err(WireError::TaskCancelled);
            }
        }
        match conn.poll_recv(poll, liveness)? {
            None => {
                if last_signal.elapsed() >= liveness {
                    return Err(WireError::LivenessExpired {
                        silent_for: last_signal.elapsed(),
                    });
                }
            }
            Some(Message::Heartbeat) => last_signal = Instant::now(),
            Some(Message::TaskDone { result, findings }) => {
                // A result that does not describe the dispatched shard —
                // a duplicated or stale frame from an earlier task — must
                // never be booked as this task's answer; fail the
                // connection so the shard re-queues and re-runs cleanly.
                if result.id != spec.id || result.points_total != spec.points.len() {
                    return Err(WireError::UnexpectedMessage("stale result"));
                }
                return match cancel_sent {
                    // The completion raced our abort-Cancel; the campaign
                    // is aborting, so the result is discarded either way.
                    Some((_, CancelReason::Abort)) => Err(WireError::TaskCancelled),
                    // A completion racing a split-Cancel wins: the shard
                    // is done, there is nothing left to split.
                    _ => Ok(DispatchOutcome::Done(result, findings)),
                };
            }
            Some(Message::Error(msg)) => {
                return match cancel_sent {
                    Some((_, CancelReason::Abort)) => Err(WireError::TaskCancelled),
                    Some((_, CancelReason::Split)) => Ok(DispatchOutcome::SplitCancelled),
                    None => Err(WireError::Remote(msg)),
                };
            }
            Some(
                Message::Task(_)
                | Message::Shutdown
                | Message::Cancel
                | Message::Register { .. }
                | Message::Welcome { .. }
                | Message::ClientHello { .. }
                | Message::ClientAccept { .. },
            ) => {
                return Err(WireError::UnexpectedMessage("task"));
            }
        }
    }
}

/// Worker processes spawned on loopback for tests, demos, and CI; killed
/// on drop if still running.
pub struct SpawnedWorkers {
    /// The workers' bound addresses, ready for [`run_distributed`].
    pub addrs: Vec<String>,
    children: Vec<Child>,
}

impl SpawnedWorkers {
    /// SIGKILLs worker `idx` (by position in [`SpawnedWorkers::addrs`])
    /// and removes it from the set, returning its address. The chaos
    /// suite calls this mid-campaign; a later [`SpawnedWorkers::join`]
    /// only waits on the survivors.
    ///
    /// # Errors
    ///
    /// Any kill/wait error.
    ///
    /// # Panics
    ///
    /// When `idx` is out of bounds.
    pub fn kill_one(&mut self, idx: usize) -> io::Result<String> {
        let mut child = self.children.remove(idx);
        let addr = self.addrs.remove(idx);
        // Always reap, even when the kill itself errors, so a half-dead
        // child can't linger as a zombie.
        let killed = child.kill();
        let waited = child.wait();
        killed.and(waited)?;
        Ok(addr)
    }

    /// Waits for every worker process to exit (after a campaign run with
    /// `shutdown_workers = true`), for up to ~10 seconds per worker.
    ///
    /// A worker whose coordinator connection was abandoned mid-campaign
    /// (failure → re-queue) never receives a `Shutdown` frame and sits in
    /// its accept loop; rather than hang forever, such a worker is killed
    /// and reported as an error — the campaign's results are unaffected,
    /// but a clean-shutdown assertion (the integration tests') should see
    /// it.
    ///
    /// # Errors
    ///
    /// Any wait error, a worker exiting unsuccessfully, or a worker that
    /// had to be killed after the grace period.
    pub fn join(mut self) -> io::Result<()> {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        // Pop children one at a time so an early error return leaves the
        // rest inside `self` for `Drop` to kill — a lazy `drain` would
        // leak them as orphan processes instead.
        while let Some(mut child) = self.children.pop() {
            let status = loop {
                if let Some(status) = child.try_wait()? {
                    break status;
                }
                if std::time::Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(io::Error::other(
                        "worker did not exit after shutdown; killed",
                    ));
                }
                std::thread::sleep(Duration::from_millis(20));
            };
            if !status.success() {
                return Err(io::Error::other(format!("worker exited with {status}")));
            }
        }
        Ok(())
    }
}

impl Drop for SpawnedWorkers {
    fn drop(&mut self) {
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Spawns `n` worker processes of `exe` on 127.0.0.1, waiting for each to
/// print its [`LISTENING_PREFIX`] readiness line. `args` is the argument
/// prefix that puts the executable into worker mode listening on
/// `127.0.0.1:0` (e.g. `["serve", "--listen", "127.0.0.1:0"]` for the
/// `symplfied` CLI, or a campaign binary's self-spawn flag).
///
/// # Errors
///
/// Any spawn error, or a worker exiting / closing stdout before
/// announcing readiness.
pub fn spawn_loopback_workers(exe: &Path, args: &[String], n: usize) -> io::Result<SpawnedWorkers> {
    let mut workers = SpawnedWorkers {
        addrs: Vec::with_capacity(n),
        children: Vec::with_capacity(n),
    };
    for _ in 0..n {
        let mut child = Command::new(exe)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| io::Error::other("worker stdout not captured"))?;
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let Some(line) = lines.next() else {
                let _ = child.kill();
                return Err(io::Error::other(
                    "worker exited before announcing its address",
                ));
            };
            let line = line?;
            if let Some(addr) = line.strip_prefix(LISTENING_PREFIX) {
                break addr.trim().to_owned();
            }
        };
        workers.addrs.push(addr);
        workers.children.push(child);
    }
    Ok(workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosMode, ChaosProxy};
    use sympl_asm::parse_program;
    use sympl_check::SearchLimits;
    use sympl_cluster::run_cluster;
    use sympl_inject::{Campaign, ErrorClass};
    use sympl_machine::ExecLimits;

    fn factorial() -> Program {
        parse_program(
            "ori $2 $0 #1\nread $1\nmov $3, $1\nori $4 $0 #1\n\
             loop: setgt $5 $3 $4\nbeq $5 0 exit\nmult $2 $2 $3\nsubi $3 $3 #1\nbeq $0 #0 loop\n\
             exit: prints \"Factorial = \"\nprint $2\nhalt",
        )
        .unwrap()
    }

    /// A program whose per-point searches run long enough (tens of
    /// milliseconds under a generous step budget) that membership events
    /// — a late join, an idle worker's split request — land while a
    /// shard is still in flight.
    fn slow_program() -> Program {
        parse_program(
            "read $1\nmov $4 $1\nouter: ori $2 $0 #0\n\
             inner: addi $2 $2 #1\nsetgt $3 $2 $1\nbeq $3 0 inner\n\
             subi $4 $4 #1\nsetgt $5 $4 #0\nbeq $5 1 outer\n\
             prints \"done\"\nhalt",
        )
        .unwrap()
    }

    fn resolver(id: &str) -> Option<(Program, DetectorSet)> {
        match id {
            "factorial" => Some((factorial(), DetectorSet::new())),
            "slowprog" => Some((slow_program(), DetectorSet::new())),
            _ => None,
        }
    }

    fn deterministic_config(tasks: usize) -> ClusterConfig {
        ClusterConfig {
            workers: 2,
            tasks,
            search: SearchLimits {
                exec: ExecLimits::with_max_steps(300),
                ..SearchLimits::default()
            },
            task_budget: None,
            max_findings_per_task: 10,
            point_workers_hint: Some(1),
        }
    }

    /// Starts an in-process worker serving the factorial resolver on a
    /// loopback port; returns its address and join handle.
    fn start_worker() -> (String, std::thread::JoinHandle<Result<(), WireError>>) {
        let server = WorkerServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.serve(&resolver));
        (addr, handle)
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sympl-transport-{tag}-{}.bin", std::process::id()))
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        assert_eq!(backoff_delay(0), Duration::ZERO);
        assert_eq!(backoff_delay(1), Duration::from_millis(50));
        assert_eq!(backoff_delay(2), Duration::from_millis(100));
        assert_eq!(backoff_delay(3), Duration::from_millis(200));
        assert_eq!(backoff_delay(6), Duration::from_millis(1600));
        assert_eq!(backoff_delay(7), Duration::from_secs(2));
        assert_eq!(backoff_delay(100), Duration::from_secs(2));
        // Determinism: same input, same schedule — twice.
        for attempt in 0..10 {
            assert_eq!(backoff_delay(attempt), backoff_delay(attempt));
        }
    }

    #[test]
    fn liveness_deadline_scales_with_the_cadence_and_never_vanishes() {
        assert_eq!(
            liveness_deadline(Duration::from_millis(500)),
            Duration::from_secs(3)
        );
        assert!(liveness_deadline(Duration::ZERO) >= Duration::from_secs(1));
        assert!(
            liveness_deadline(Duration::from_millis(25)) < Duration::from_secs(2),
            "a fast cadence should give a tight deadline"
        );
    }

    #[test]
    fn distributed_campaign_reproduces_in_process_report() {
        let program = factorial();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        let config = deterministic_config(5);

        let local = run_cluster(
            &program,
            &DetectorSet::new(),
            &[4],
            &campaign,
            &predicate,
            &config,
        );

        let (addr_a, join_a) = start_worker();
        let (addr_b, join_b) = start_worker();
        let job = CampaignJob {
            program: &program,
            program_id: "factorial",
            input: &[4],
            campaign: &campaign,
            predicate: &predicate,
            config: &config,
        };
        let distributed = run_distributed(&job, &[addr_a, addr_b], true).unwrap();
        join_a.join().unwrap().unwrap();
        join_b.join().unwrap().unwrap();

        assert_eq!(distributed.findings, local.findings, "findings verbatim");
        assert_eq!(distributed.tasks.len(), local.tasks.len());
        for (d, l) in distributed.tasks.iter().zip(&local.tasks) {
            assert_eq!(
                (d.id, d.points_examined, d.points_total),
                (l.id, l.points_examined, l.points_total)
            );
            assert_eq!(
                (d.activated, d.findings, d.completed),
                (l.activated, l.findings, l.completed)
            );
            assert_eq!(d.states_explored, l.states_explored);
        }
        assert_eq!(distributed.outcome_digest(), local.outcome_digest());
        assert!(!distributed.degraded, "no worker was lost");
        assert_eq!(distributed.resumed_tasks, 0);
    }

    #[test]
    fn dropped_worker_has_its_task_requeued() {
        let program = factorial();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        let config = deterministic_config(4);

        // A flaky "worker" that handshakes, admits the session, accepts
        // one task, then drops the connection without answering.
        let flaky_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let flaky_addr = flaky_listener.local_addr().unwrap().to_string();
        let flaky = std::thread::spawn(move || {
            let (mut stream, _) = flaky_listener.accept().unwrap();
            handshake(&mut stream).unwrap();
            let _ = read_frame(&mut stream).unwrap(); // ClientHello
            let accept = encode_message(&Message::ClientAccept { client_id: 1 }).unwrap();
            write_frame(&mut stream, &accept).unwrap();
            let _ = read_frame(&mut stream).unwrap(); // the task
                                                      // Drop the stream with the task unanswered.
        });

        let (real_addr, real_join) = start_worker();
        let job = CampaignJob {
            program: &program,
            program_id: "factorial",
            input: &[4],
            campaign: &campaign,
            predicate: &predicate,
            config: &config,
        };
        let distributed = run_distributed(&job, &[flaky_addr, real_addr], true).unwrap();
        flaky.join().unwrap();
        real_join.join().unwrap().unwrap();

        let local = run_cluster(
            &program,
            &DetectorSet::new(),
            &[4],
            &campaign,
            &predicate,
            &config,
        );
        assert_eq!(
            distributed.outcome_digest(),
            local.outcome_digest(),
            "the dropped task must be re-run on the surviving worker"
        );
        assert_eq!(distributed.tasks.len(), 4);
        assert!(distributed.degraded, "a worker was lost");
        assert!(distributed.workers_lost >= 1);
        assert!(distributed.tasks_retried >= 1);
    }

    #[test]
    fn stalled_worker_trips_the_liveness_deadline_without_a_task_budget() {
        let program = factorial();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        // task_budget is None (see deterministic_config): before the
        // heartbeat layer this was the read-deadline hole — a wedged
        // worker could hang the campaign forever.
        let config = deterministic_config(3);

        // A "worker" that handshakes, admits the session, reads the task,
        // then goes silent holding the connection open — no heartbeats,
        // no reply, no EOF.
        let wedged_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let wedged_addr = wedged_listener.local_addr().unwrap().to_string();
        let unwedge = std::sync::Arc::new(AtomicBool::new(false));
        let unwedge_thread = std::sync::Arc::clone(&unwedge);
        let wedged = std::thread::spawn(move || {
            let (mut stream, _) = wedged_listener.accept().unwrap();
            handshake(&mut stream).unwrap();
            let _ = read_frame(&mut stream).unwrap(); // ClientHello
            let accept = encode_message(&Message::ClientAccept { client_id: 1 }).unwrap();
            write_frame(&mut stream, &accept).unwrap();
            let _ = read_frame(&mut stream).unwrap(); // the task
            while !unwedge_thread.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(10));
            }
        });

        let (real_addr, real_join) = start_worker();
        let job = CampaignJob {
            program: &program,
            program_id: "factorial",
            input: &[4],
            campaign: &campaign,
            predicate: &predicate,
            config: &config,
        };
        // A fast cadence keeps the test quick: liveness ≈ 1.12 s.
        let opts = DistOptions {
            shutdown_workers: true,
            heartbeat_interval: Duration::from_millis(30),
            ..DistOptions::default()
        };
        let started = Instant::now();
        let distributed = run_distributed_with(&job, &[wedged_addr, real_addr], &opts).unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "the wedged worker must be declared dead by the liveness \
             deadline, not waited out"
        );
        unwedge.store(true, Ordering::Relaxed);
        wedged.join().unwrap();
        real_join.join().unwrap().unwrap();

        let local = run_cluster(
            &program,
            &DetectorSet::new(),
            &[4],
            &campaign,
            &predicate,
            &config,
        );
        assert_eq!(distributed.outcome_digest(), local.outcome_digest());
        assert!(distributed.degraded);
    }

    #[test]
    fn chaos_proxy_drop_and_stall_both_requeue_to_the_survivor() {
        let program = factorial();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        let config = deterministic_config(4);
        let local = run_cluster(
            &program,
            &DetectorSet::new(),
            &[4],
            &campaign,
            &predicate,
            &config,
        );
        let job = CampaignJob {
            program: &program,
            program_id: "factorial",
            input: &[4],
            campaign: &campaign,
            predicate: &predicate,
            config: &config,
        };

        for mode in [
            // Drop after the preamble: the first worker→coordinator frame
            // (the session's ClientAccept) is never delivered, so the
            // connection dies in the hello exchange.
            ChaosMode::DropAfterFrames(0),
            // Stall half-way through the first frame and hold the socket:
            // the coordinator's bounded hello read must fail this
            // connection rather than wait out the hold.
            ChaosMode::StallMidFrame {
                after_frames: 0,
                hold: Duration::from_secs(5),
            },
        ] {
            let (victim_addr, victim_join) = start_worker();
            let (real_addr, real_join) = start_worker();
            let proxy = ChaosProxy::start(victim_addr.clone(), mode).unwrap();
            let opts = DistOptions {
                shutdown_workers: true,
                heartbeat_interval: Duration::from_millis(30),
                ..DistOptions::default()
            };
            let started = Instant::now();
            let distributed =
                run_distributed_with(&job, &[proxy.addr.clone(), real_addr], &opts).unwrap();
            assert!(
                started.elapsed() < Duration::from_secs(15),
                "{mode:?}: the chaos leg must fail fast via supervision"
            );
            assert_eq!(
                distributed.outcome_digest(),
                local.outcome_digest(),
                "{mode:?}: the merged report must hit the in-process digest"
            );
            assert!(distributed.degraded, "{mode:?}");
            real_join.join().unwrap().unwrap();
            // The victim worker behind the proxy never got a Shutdown;
            // send one directly so its serve loop exits.
            let stream = TcpStream::connect(victim_addr.as_str()).unwrap();
            let mut conn = Conn::establish(stream).unwrap();
            conn.send(&Message::Shutdown).unwrap();
            victim_join.join().unwrap().unwrap();
            proxy.join();
        }
    }

    #[test]
    fn aborted_coordinator_resumes_from_its_checkpoint_to_the_same_digest() {
        let program = factorial();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        let config = deterministic_config(6);
        let local = run_cluster(
            &program,
            &DetectorSet::new(),
            &[4],
            &campaign,
            &predicate,
            &config,
        );
        let job = CampaignJob {
            program: &program,
            program_id: "factorial",
            input: &[4],
            campaign: &campaign,
            predicate: &predicate,
            config: &config,
        };
        let ck = temp_path("abort-resume");

        // Leg 1: checkpointing coordinator "crashes" after 2 results.
        // Workers survive (no Shutdown is sent on abort).
        let (addr_a, join_a) = start_worker();
        let (addr_b, join_b) = start_worker();
        let workers = [addr_a, addr_b];
        let leg1 = DistOptions {
            checkpoint: Some(&ck),
            chaos: ChaosPlan {
                abort_after_results: Some(2),
                ..ChaosPlan::default()
            },
            ..DistOptions::default()
        };
        let err = run_distributed_with(&job, &workers, &leg1).unwrap_err();
        assert!(
            matches!(err, WireError::CoordinatorAborted { completed } if completed >= 2),
            "{err}"
        );

        // Leg 2: a fresh coordinator resumes the same workers from the
        // checkpoint and must reproduce the uninterrupted digest.
        let leg2 = DistOptions {
            shutdown_workers: true,
            resume: Some(&ck),
            ..DistOptions::default()
        };
        let resumed = run_distributed_with(&job, &workers, &leg2).unwrap();
        join_a.join().unwrap().unwrap();
        join_b.join().unwrap().unwrap();
        let _ = std::fs::remove_file(&ck);

        assert!(
            resumed.resumed_tasks >= 2,
            "at least the checkpointed tasks must be seeded"
        );
        assert!(
            resumed.resumed_tasks < local.tasks.len(),
            "some shards must be re-run"
        );
        assert_eq!(
            resumed.outcome_digest(),
            local.outcome_digest(),
            "resumed + re-run shards must merge to the uninterrupted digest"
        );
        assert_eq!(resumed.tasks.len(), local.tasks.len());
    }

    #[test]
    fn stale_checkpoints_are_refused() {
        let program = factorial();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        let config = deterministic_config(3);
        let job = CampaignJob {
            program: &program,
            program_id: "factorial",
            input: &[4],
            campaign: &campaign,
            predicate: &predicate,
            config: &config,
        };
        let ck = temp_path("stale");
        // A checkpoint written under a *different* campaign key (other
        // input stream → other key).
        let other_job = CampaignJob { input: &[5], ..job };
        let key = campaign_key(&other_job).unwrap();
        drop(CheckpointWriter::create(&ck, key, 3).unwrap());

        let opts = DistOptions {
            resume: Some(&ck),
            ..DistOptions::default()
        };
        let err = run_distributed_with(&job, &["127.0.0.1:1".into()], &opts).unwrap_err();
        let _ = std::fs::remove_file(&ck);
        assert!(matches!(err, WireError::StaleCheckpoint(_)), "{err}");
    }

    #[test]
    fn unknown_program_and_digest_mismatch_are_remote_errors() {
        let program = factorial();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        let config = deterministic_config(2);

        // Unknown id: the single worker refuses every attempt, so the
        // campaign aborts with the remote error.
        let (addr, join) = start_worker();
        let job = CampaignJob {
            program: &program,
            program_id: "no-such-workload",
            input: &[4],
            campaign: &campaign,
            predicate: &predicate,
            config: &config,
        };
        let err = run_distributed(&job, std::slice::from_ref(&addr), false).unwrap_err();
        assert!(
            matches!(err, WireError::Remote(ref m) if m.contains("unknown program")),
            "{err}"
        );

        // Digest mismatch: same id, different program body.
        let other = parse_program("read $1\nprint $1\nhalt").unwrap();
        let other_campaign = Campaign::new(&other, ErrorClass::RegisterFile);
        let job = CampaignJob {
            program: &other,
            program_id: "factorial",
            input: &[4],
            campaign: &other_campaign,
            predicate: &predicate,
            config: &config,
        };
        let err = run_distributed(&job, std::slice::from_ref(&addr), false).unwrap_err();
        assert!(
            matches!(err, WireError::Remote(ref m) if m.contains("digest mismatch")),
            "{err}"
        );

        // Shut the worker down via a bare connection.
        let stream = TcpStream::connect(addr.as_str()).unwrap();
        let mut conn = Conn::establish(stream).unwrap();
        conn.send(&Message::Shutdown).unwrap();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn no_reachable_workers_is_an_error() {
        let program = factorial();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        let config = deterministic_config(3);
        // A bound-then-dropped listener leaves a refused port behind.
        let dead_addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let job = CampaignJob {
            program: &program,
            program_id: "factorial",
            input: &[4],
            campaign: &campaign,
            predicate: &predicate,
            config: &config,
        };
        let err = run_distributed(&job, &[dead_addr], false).unwrap_err();
        assert!(
            matches!(err, WireError::NoWorkersLeft { pending: 3 }),
            "{err}"
        );
    }

    /// A slow-campaign config: one long-searching shard set under a step
    /// budget big enough that splits and joins can land mid-flight.
    fn slow_config(tasks: usize, max_states: usize) -> ClusterConfig {
        ClusterConfig {
            workers: 2,
            tasks,
            search: SearchLimits {
                exec: ExecLimits::with_max_steps(20_000),
                max_states,
                ..SearchLimits::default()
            },
            task_budget: None,
            max_findings_per_task: 10,
            point_workers_hint: Some(1),
        }
    }

    #[test]
    fn garbage_connections_do_not_kill_the_worker_listener() {
        use std::io::Write as _;
        let (addr, join) = start_worker();

        // 1: raw garbage — not even our magic.
        let mut s = TcpStream::connect(addr.as_str()).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        drop(s);

        // 2: correct magic, unsupported protocol version.
        let mut s = TcpStream::connect(addr.as_str()).unwrap();
        s.write_all(&crate::frame::MAGIC).unwrap();
        s.write_all(&[99]).unwrap();
        drop(s);

        // 3: a real coordinator still completes a full campaign.
        let program = factorial();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        let config = deterministic_config(3);
        let local = run_cluster(
            &program,
            &DetectorSet::new(),
            &[4],
            &campaign,
            &predicate,
            &config,
        );
        let job = CampaignJob {
            program: &program,
            program_id: "factorial",
            input: &[4],
            campaign: &campaign,
            predicate: &predicate,
            config: &config,
        };
        let distributed = run_distributed(&job, std::slice::from_ref(&addr), true).unwrap();
        join.join().unwrap().unwrap();
        assert_eq!(distributed.outcome_digest(), local.outcome_digest());
        assert!(!distributed.degraded, "garbage peers are not lost workers");
    }

    #[test]
    fn late_joiner_is_admitted_and_the_digest_holds() {
        let program = slow_program();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        let config = slow_config(6, 2_000);
        let local = run_cluster(
            &program,
            &DetectorSet::new(),
            &[12],
            &campaign,
            &predicate,
            &config,
        );
        let job = CampaignJob {
            program: &program,
            program_id: "slowprog",
            input: &[12],
            campaign: &campaign,
            predicate: &predicate,
            config: &config,
        };

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let join_addr = listener.local_addr().unwrap().to_string();
        let joiner: Mutex<Option<std::thread::JoinHandle<Result<(), WireError>>>> =
            Mutex::new(None);
        let spawn_joiner = || {
            let addr = join_addr.clone();
            *joiner.lock().unwrap() = Some(std::thread::spawn(move || {
                join_coordinator(&addr, "late-joiner", &resolver)
            }));
        };

        let (addr, worker_join) = start_worker();
        let opts = DistOptions {
            shutdown_workers: true,
            heartbeat_interval: Duration::from_millis(30),
            join_listener: Some(&listener),
            chaos: ChaosPlan {
                delayed_join: Some((1, &spawn_joiner)),
                ..ChaosPlan::default()
            },
            ..DistOptions::default()
        };
        let report = run_distributed_with(&job, std::slice::from_ref(&addr), &opts).unwrap();
        worker_join.join().unwrap().unwrap();
        assert_eq!(
            report.workers_joined, 1,
            "the delayed joiner must have been admitted"
        );
        assert!(!report.degraded, "a join is growth, not degradation");
        assert_eq!(
            report.outcome_digest(),
            local.outcome_digest(),
            "an elastic fleet must reproduce the in-process digest"
        );
        let handle = joiner
            .into_inner()
            .unwrap()
            .expect("the delayed-join hook must have fired");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn idle_worker_forces_a_split_and_the_digest_holds() {
        let program = slow_program();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        assert!(campaign.len() >= 2, "need a splittable campaign");
        let predicate = Predicate::OutputContainsErr;
        // One shard holding every point: without splitting, the second
        // worker would sit idle for the whole campaign. The deep state
        // cap keeps the shard in flight for seconds even on a loaded
        // machine (the full test suite runs in parallel), so the split
        // round-trip — idle worker requests, victim acks after its
        // current point, halves re-queue — always lands before the
        // shard completes.
        let mut config = slow_config(1, 20_000);
        // Lift the finding cap past every point's worst case so splitting
        // is exactness-preserving (the split gate's requirement).
        config.max_findings_per_task = campaign.len() * config.search.max_solutions;
        let local = run_cluster(
            &program,
            &DetectorSet::new(),
            &[60],
            &campaign,
            &predicate,
            &config,
        );
        let job = CampaignJob {
            program: &program,
            program_id: "slowprog",
            input: &[60],
            campaign: &campaign,
            predicate: &predicate,
            config: &config,
        };
        let (addr_a, join_a) = start_worker();
        let (addr_b, join_b) = start_worker();
        let opts = DistOptions {
            shutdown_workers: true,
            heartbeat_interval: Duration::from_millis(30),
            split_idle: true,
            ..DistOptions::default()
        };
        let report = run_distributed_with(&job, &[addr_a, addr_b], &opts).unwrap();
        join_a.join().unwrap().unwrap();
        join_b.join().unwrap().unwrap();
        assert!(
            report.tasks_split >= 1,
            "the idle worker must have claimed half the only shard"
        );
        assert!(!report.degraded, "splitting is not degradation");
        assert_eq!(report.tasks.len(), 1, "halves re-merge into one shard");
        assert_eq!(
            report.outcome_digest(),
            local.outcome_digest(),
            "shard splitting must not move the digest"
        );
    }

    #[test]
    fn split_idle_is_refused_when_the_finding_cap_binds() {
        let program = factorial();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        // The default cap (10) can bind on a whole-campaign shard, so the
        // coordinator must ignore --split-idle and still finish clean.
        let config = deterministic_config(2);
        let local = run_cluster(
            &program,
            &DetectorSet::new(),
            &[4],
            &campaign,
            &predicate,
            &config,
        );
        let job = CampaignJob {
            program: &program,
            program_id: "factorial",
            input: &[4],
            campaign: &campaign,
            predicate: &predicate,
            config: &config,
        };
        let (addr_a, join_a) = start_worker();
        let (addr_b, join_b) = start_worker();
        let opts = DistOptions {
            shutdown_workers: true,
            split_idle: true,
            ..DistOptions::default()
        };
        let report = run_distributed_with(&job, &[addr_a, addr_b], &opts).unwrap();
        join_a.join().unwrap().unwrap();
        join_b.join().unwrap().unwrap();
        assert_eq!(report.tasks_split, 0, "the gate must refuse to split");
        assert_eq!(report.outcome_digest(), local.outcome_digest());
    }

    #[test]
    fn duplicated_result_frame_does_not_corrupt_the_report() {
        let program = factorial();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        let config = deterministic_config(4);
        let local = run_cluster(
            &program,
            &DetectorSet::new(),
            &[4],
            &campaign,
            &predicate,
            &config,
        );
        let job = CampaignJob {
            program: &program,
            program_id: "factorial",
            input: &[4],
            campaign: &campaign,
            predicate: &predicate,
            config: &config,
        };

        // Frame 0 in the worker→coordinator direction is the session's
        // ClientAccept — its duplicate arrives while the coordinator is
        // awaiting the task's heartbeats, fails the connection as an
        // unexpected message, and must never corrupt the report (the
        // shard re-runs cleanly on the survivor).
        let (victim_addr, victim_join) = start_worker();
        let (real_addr, real_join) = start_worker();
        let proxy =
            ChaosProxy::start(victim_addr.clone(), ChaosMode::DuplicateFrame { frame: 0 }).unwrap();
        let opts = DistOptions {
            shutdown_workers: true,
            ..DistOptions::default()
        };
        let report = run_distributed_with(&job, &[proxy.addr.clone(), real_addr], &opts).unwrap();
        assert_eq!(
            report.outcome_digest(),
            local.outcome_digest(),
            "duplicate delivery must never double-count a task"
        );
        assert_eq!(report.tasks.len(), local.tasks.len());
        real_join.join().unwrap().unwrap();
        // The victim behind the proxy never got a Shutdown; send one
        // directly so its serve loop exits.
        let stream = TcpStream::connect(victim_addr.as_str()).unwrap();
        let mut conn = Conn::establish(stream).unwrap();
        conn.send(&Message::Shutdown).unwrap();
        victim_join.join().unwrap().unwrap();
        proxy.join();
    }
}
