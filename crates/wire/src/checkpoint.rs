//! Campaign checkpointing: an append-only, codec-encoded record of every
//! completed task, so a coordinator that dies mid-campaign can be
//! restarted with `--resume` and re-queue *only* the missing shards.
//!
//! ## File format
//!
//! The `SYCP` format: `b"SYCP"` magic + [`CHECKPOINT_VERSION`] +
//! [`PROTOCOL_VERSION`](crate::PROTOCOL_VERSION) + the [`campaign_key`]
//! (an FNV-128 digest of the full campaign identity — a stale or foreign
//! checkpoint is refused) + shard count, followed by one digest-tailed
//! record per completed task in the `TaskDone` body encoding. The
//! normative byte layout lives in **`docs/PROTOCOL.md`** (§2) at the
//! repository root, next to the wire and memo-store specs.
//!
//! Records are appended and flushed one at a time, so a coordinator
//! killed mid-append leaves at most one *truncated* trailing record. The
//! loader is deliberately lenient about exactly that case (the tail is
//! dropped and reported via [`CheckpointFile::truncated_tail`]) and
//! strict about everything else: a header that does not match, a record
//! whose digest check fails, or trailing garbage is corruption and
//! refuses to load.
//!
//! ## Determinism contract
//!
//! Task execution is deterministic (see the crate docs), so a resumed
//! campaign — checkpointed results merged with freshly re-run missing
//! shards through the same [`sympl_cluster::pool_results`] — produces a
//! [`sympl_cluster::CampaignReport`] whose
//! [`outcome_digest`](sympl_cluster::CampaignReport::outcome_digest) is
//! identical to an uninterrupted run's. The chaos acceptance suite gates
//! on exactly this.

use std::fs::File;
use std::hash::Hasher as _;
use std::io::{Read as _, Write as _};
use std::path::Path;

use sympl_cluster::{Finding, TaskResult};
use sympl_symbolic::codec::{decode_u64, encode_u64};
use sympl_symbolic::Fnv128Hasher;

use crate::frame::PROTOCOL_VERSION;
use crate::proto::{
    decode_finding, decode_task_result, decode_u128, encode_finding, encode_task_result,
    encode_u128,
};
use crate::transport::CampaignJob;
use crate::{program_digest, CodecError, WireError};

/// The four bytes every checkpoint file opens with.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"SYCP";

/// The checkpoint container-format revision (header + record framing).
/// Record *payload* compatibility is tracked separately via the embedded
/// [`PROTOCOL_VERSION`].
pub const CHECKPOINT_VERSION: u64 = 1;

/// Hard cap on a single checkpoint record (matches the wire frame cap —
/// a record is a `TaskDone` body).
const MAX_RECORD_LEN: usize = crate::frame::MAX_FRAME_LEN;

/// A deterministic FNV-128 digest of everything that identifies a
/// campaign: the program (by [`program_digest`]), the input stream, the
/// predicate, the full search limits, the task budget and finding cap,
/// the resolved point-workers share, the shard count, and every injection
/// point in order. Two [`CampaignJob`]s with the same key shard into the
/// same tasks and run them to the same outcomes, which is what makes a
/// checkpoint written by one coordinator safe for another to resume; a
/// checkpoint whose key differs is stale and is refused.
///
/// # Errors
///
/// [`CodecError::Unsupported`] when the predicate is a closure-backed
/// `Predicate::Custom` — such campaigns cannot be checkpointed (or
/// distributed) because their identity cannot be encoded.
pub fn campaign_key(job: &CampaignJob<'_>) -> Result<u128, CodecError> {
    use sympl_check::codec::{encode_i64_seq, encode_predicate, encode_search_limits};
    use sympl_inject::codec::encode_point;
    use sympl_symbolic::codec::encode_opt_duration;

    let mut buf = Vec::new();
    encode_u128(program_digest(job.program), &mut buf);
    encode_i64_seq(job.input, &mut buf);
    encode_predicate(job.predicate, &mut buf)?;
    encode_search_limits(&job.config.search, &mut buf);
    encode_opt_duration(job.config.task_budget, &mut buf);
    encode_u64(job.config.max_findings_per_task as u64, &mut buf);
    encode_u64(job.config.point_share() as u64, &mut buf);
    encode_u64(job.config.tasks as u64, &mut buf);
    encode_u64(job.campaign.points.len() as u64, &mut buf);
    for point in &job.campaign.points {
        encode_point(point, &mut buf);
    }
    let mut h = Fnv128Hasher::new();
    h.write(&buf);
    Ok(h.finish128())
}

fn record_digest(payload: &[u8]) -> u128 {
    let mut h = Fnv128Hasher::new();
    h.write(payload);
    h.finish128()
}

/// Appends completed-task records to a checkpoint file, one flushed
/// record per task, so the on-disk state is crash-consistent at record
/// granularity.
pub struct CheckpointWriter {
    file: File,
}

impl CheckpointWriter {
    /// Creates (truncating) a checkpoint file and writes its header.
    ///
    /// # Errors
    ///
    /// Any filesystem error.
    pub fn create(path: &Path, key: u128, tasks_total: usize) -> Result<Self, WireError> {
        let mut header = Vec::with_capacity(64);
        header.extend_from_slice(&CHECKPOINT_MAGIC);
        encode_u64(CHECKPOINT_VERSION, &mut header);
        encode_u64(PROTOCOL_VERSION, &mut header);
        encode_u128(key, &mut header);
        encode_u64(tasks_total as u64, &mut header);
        let mut file = File::create(path).map_err(WireError::Io)?;
        file.write_all(&header).map_err(WireError::Io)?;
        file.flush().map_err(WireError::Io)?;
        Ok(CheckpointWriter { file })
    }

    /// Appends one completed task's result and findings as a single
    /// digest-protected record, flushed before returning.
    ///
    /// # Errors
    ///
    /// Any filesystem error.
    pub fn append(&mut self, result: &TaskResult, findings: &[Finding]) -> Result<(), WireError> {
        let mut payload = Vec::new();
        encode_task_result(result, &mut payload);
        encode_u64(findings.len() as u64, &mut payload);
        for finding in findings {
            encode_finding(finding, &mut payload);
        }
        let mut record = Vec::with_capacity(payload.len() + 24);
        encode_u64(payload.len() as u64, &mut record);
        record.extend_from_slice(&payload);
        record.extend_from_slice(&record_digest(&payload).to_le_bytes());
        self.file.write_all(&record).map_err(WireError::Io)?;
        self.file.flush().map_err(WireError::Io)?;
        Ok(())
    }
}

/// A parsed checkpoint file.
#[derive(Debug)]
pub struct CheckpointFile {
    /// The campaign key the checkpoint was written under
    /// ([`campaign_key`]); resume refuses a key mismatch.
    pub key: u128,
    /// The shard count the checkpointed campaign was split into.
    pub tasks_total: usize,
    /// Every intact completed-task record, in append order.
    pub entries: Vec<(TaskResult, Vec<Finding>)>,
    /// Whether a truncated trailing record was dropped — the signature of
    /// a coordinator killed mid-append. The intact prefix is still valid.
    pub truncated_tail: bool,
}

/// Reads and parses a checkpoint file. See [`parse_checkpoint`].
///
/// # Errors
///
/// Any filesystem error, plus everything [`parse_checkpoint`] refuses.
pub fn load_checkpoint(path: &Path) -> Result<CheckpointFile, WireError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(WireError::Io)?;
    parse_checkpoint(&bytes)
}

/// Parses checkpoint bytes: strict about the header and any corruption
/// inside complete records, lenient about exactly one truncated trailing
/// record (a mid-append crash), which is dropped and flagged.
///
/// # Errors
///
/// [`WireError::BadMagic`] / [`WireError::VersionMismatch`] on a foreign
/// or stale header, [`WireError::CheckpointCorrupt`] when a record's
/// digest check fails, plus any [`CodecError`] from malformed payloads.
pub fn parse_checkpoint(bytes: &[u8]) -> Result<CheckpointFile, WireError> {
    let mut pos = 0usize;
    let magic: [u8; 4] = bytes
        .get(..4)
        .and_then(|m| m.try_into().ok())
        .ok_or(WireError::from(CodecError::UnexpectedEnd))?;
    if magic != CHECKPOINT_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    pos += 4;
    let version = decode_u64(bytes, &mut pos)?;
    if version != CHECKPOINT_VERSION {
        return Err(WireError::VersionMismatch {
            ours: CHECKPOINT_VERSION,
            theirs: version,
        });
    }
    let protocol = decode_u64(bytes, &mut pos)?;
    if protocol != PROTOCOL_VERSION {
        return Err(WireError::VersionMismatch {
            ours: PROTOCOL_VERSION,
            theirs: protocol,
        });
    }
    let key = decode_u128(bytes, &mut pos)?;
    let tasks_total = usize::try_from(decode_u64(bytes, &mut pos)?)
        .map_err(|_| WireError::from(CodecError::Overflow))?;

    let mut entries = Vec::new();
    let mut truncated_tail = false;
    while pos < bytes.len() {
        let record_start = pos;
        // A record that cannot even announce its length is a truncated
        // tail, not corruption.
        let Ok(len) = decode_u64(bytes, &mut pos) else {
            truncated_tail = true;
            break;
        };
        let Ok(len) = usize::try_from(len) else {
            return Err(WireError::CheckpointCorrupt {
                offset: record_start,
            });
        };
        if len > MAX_RECORD_LEN {
            return Err(WireError::CheckpointCorrupt {
                offset: record_start,
            });
        }
        let Some(payload) = bytes.get(pos..pos + len) else {
            truncated_tail = true;
            break;
        };
        let Some(digest) = bytes
            .get(pos + len..pos + len + 16)
            .and_then(|d| <[u8; 16]>::try_from(d).ok())
        else {
            truncated_tail = true;
            break;
        };
        if u128::from_le_bytes(digest) != record_digest(payload) {
            return Err(WireError::CheckpointCorrupt {
                offset: record_start,
            });
        }
        let mut p = 0usize;
        let result = decode_task_result(payload, &mut p)?;
        let n = usize::try_from(decode_u64(payload, &mut p)?)
            .map_err(|_| WireError::from(CodecError::Overflow))?;
        let mut findings = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            findings.push(decode_finding(payload, &mut p)?);
        }
        if p != payload.len() {
            return Err(WireError::CheckpointCorrupt {
                offset: record_start,
            });
        }
        entries.push((result, findings));
        pos += len + 16;
    }
    Ok(CheckpointFile {
        key,
        tasks_total,
        entries,
        truncated_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_entry(id: usize) -> (TaskResult, Vec<Finding>) {
        (
            TaskResult {
                id,
                points_examined: 3 + id,
                points_total: 4,
                activated: 2,
                findings: 0,
                completed: true,
                elapsed: Duration::from_millis(id as u64 * 7),
                states_explored: 100 + id,
                point_workers: 1,
                steals: 0,
                peak_frontier_len: 5,
                peak_frontier_bytes: 640,
                spilled_states: 0,
                memo_hits: 0,
                memo_states_skipped: 0,
                prefix_steps_saved: 0,
            },
            Vec::new(),
        )
    }

    fn write_file(entries: &[(TaskResult, Vec<Finding>)], key: u128, total: usize) -> Vec<u8> {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "sympl-checkpoint-test-{}-{:x}.bin",
            std::process::id(),
            key as u64
        ));
        let mut w = CheckpointWriter::create(&path, key, total).unwrap();
        for (r, f) in entries {
            w.append(r, f).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        bytes
    }

    #[test]
    fn checkpoints_roundtrip() {
        let entries: Vec<_> = (0..5).map(sample_entry).collect();
        let bytes = write_file(&entries, 0xDEAD_BEEF, 8);
        let file = parse_checkpoint(&bytes).unwrap();
        assert_eq!(file.key, 0xDEAD_BEEF);
        assert_eq!(file.tasks_total, 8);
        assert!(!file.truncated_tail);
        assert_eq!(file.entries, entries);
    }

    #[test]
    fn truncated_tails_drop_only_the_tail() {
        let entries: Vec<_> = (0..4).map(sample_entry).collect();
        let bytes = write_file(&entries, 1, 4);
        // Cut 5 bytes off the end: the last record is truncated, the
        // prefix still loads.
        let file = parse_checkpoint(&bytes[..bytes.len() - 5]).unwrap();
        assert!(file.truncated_tail);
        assert_eq!(file.entries, entries[..3]);
    }

    #[test]
    fn corrupt_records_are_refused() {
        let entries: Vec<_> = (0..3).map(sample_entry).collect();
        let bytes = write_file(&entries, 2, 3);
        // Flip a byte in the middle of the records region.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x40;
        let outcome = parse_checkpoint(&corrupt);
        match outcome {
            Err(_) => {}
            Ok(file) => {
                // A flip after the last intact record boundary may read as
                // a truncated tail; intact entries must still be a prefix.
                assert!(file.entries.len() < entries.len() || file.truncated_tail);
                assert_eq!(file.entries[..], entries[..file.entries.len()]);
            }
        }
        // Wrong magic and stale versions are refused outright.
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            parse_checkpoint(&wrong_magic),
            Err(WireError::BadMagic(_))
        ));
        let mut header = CHECKPOINT_MAGIC.to_vec();
        encode_u64(CHECKPOINT_VERSION + 9, &mut header);
        assert!(matches!(
            parse_checkpoint(&header),
            Err(WireError::VersionMismatch { .. })
        ));
    }

    #[test]
    fn empty_checkpoints_are_valid() {
        let bytes = write_file(&[], 7, 12);
        let file = parse_checkpoint(&bytes).unwrap();
        assert_eq!(file.tasks_total, 12);
        assert!(file.entries.is_empty());
        assert!(!file.truncated_tail);
    }

    /// The elastic-fleet resume guarantee: the campaign key is a pure
    /// function of the *job* — program, input, predicate, limits,
    /// budgets, sharding, points. The worker list is not even a
    /// parameter, and no fleet-shaped config field may leak in: a
    /// checkpoint written under one fleet must resume under any other
    /// (different worker count, workers joining late, shards split
    /// mid-run — splits re-merge before checkpointing, so records are
    /// whole shards either way).
    #[test]
    fn campaign_key_is_independent_of_the_fleet() {
        use sympl_asm::parse_program;
        use sympl_check::{Predicate, SearchLimits};
        use sympl_cluster::ClusterConfig;
        use sympl_inject::{Campaign, ErrorClass};

        let program = parse_program("read $1\nprint $1\nhalt").unwrap();
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::OutputContainsErr;
        // The determinism regime: a pinned point-workers share, so the
        // in-process `workers` knob cannot reshape per-point searches.
        let config = |workers: usize| ClusterConfig {
            workers,
            tasks: 4,
            search: SearchLimits::default(),
            task_budget: None,
            max_findings_per_task: 10,
            point_workers_hint: Some(1),
        };
        let job = |config: &ClusterConfig| -> u128 {
            campaign_key(&CampaignJob {
                program: &program,
                program_id: "echo",
                input: &[4],
                campaign: &campaign,
                predicate: &predicate,
                config,
            })
            .unwrap()
        };
        let two = config(2);
        let eight = config(8);
        assert_eq!(
            job(&two),
            job(&eight),
            "worker count must not move the campaign key"
        );
        // Stability across repeated derivation (no hidden state).
        assert_eq!(job(&two), job(&two));
        // The key still guards everything outcome-shaping: a different
        // shard count is a different campaign.
        let mut other = config(2);
        other.tasks = 5;
        assert_ne!(job(&two), job(&other));
    }
}
