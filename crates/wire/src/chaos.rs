//! A test-only failure injector for the transport: a frame-aware TCP
//! proxy that sits between a coordinator and a worker and breaks the
//! conversation in controlled ways. The chaos acceptance suite (in-crate
//! tests, `crates/core/tests/chaos.rs`, and the `just chaos-demo` CI leg)
//! uses it to prove the supervision layer's claims: a dropped connection
//! re-queues the in-flight task, a mid-frame stall trips the
//! heartbeat-derived liveness deadline instead of hanging the campaign,
//! and either way the merged report reproduces the in-process
//! `outcome_digest` verbatim.
//!
//! This module injects faults into *our own* infrastructure under test —
//! it is not a general network tool. The proxy serves exactly one
//! downstream connection and then exits.

use std::io::{self, BufRead as _, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

/// How the proxy should break the worker→coordinator stream.
#[derive(Debug, Clone, Copy)]
pub enum ChaosMode {
    /// Forward this many worker→coordinator frames (heartbeats count),
    /// then drop both connections — the coordinator observes a clean
    /// disconnect mid-task.
    DropAfterFrames(usize),
    /// Forward this many frames, then forward only *half* of the next
    /// frame and go silent for `hold` before dropping — the coordinator
    /// observes a wedged worker (partial bytes, then nothing) and must
    /// fail the connection via its liveness deadline, never by waiting
    /// out the hold.
    StallMidFrame {
        /// Intact frames to forward before the stall.
        after_frames: usize,
        /// How long to hold the half-sent frame before dropping.
        hold: Duration,
    },
    /// Forward every frame, but send frame number `frame` (0-based)
    /// *twice* — duplicate delivery at the frame layer. A doubled
    /// heartbeat is harmless (liveness just re-arms); a doubled result
    /// frame arrives when the coordinator expects nothing and must be
    /// handled without corrupting the merged report (the connection is
    /// failed and the duplicate discarded — results are keyed by task,
    /// never double-counted).
    DuplicateFrame {
        /// Index of the worker→coordinator frame to send twice.
        frame: usize,
    },
}

/// A one-shot chaos proxy in front of an upstream worker address.
pub struct ChaosProxy {
    /// The proxy's own listen address — hand this to the coordinator in
    /// place of the worker's.
    pub addr: String,
    handle: JoinHandle<()>,
}

impl ChaosProxy {
    /// Starts a proxy on a loopback port that will serve one coordinator
    /// connection against `upstream`, applying `mode` to the
    /// worker→coordinator direction.
    ///
    /// # Errors
    ///
    /// Any socket error binding the listen port.
    pub fn start(upstream: String, mode: ChaosMode) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        let handle = std::thread::spawn(move || {
            if let Err(e) = proxy_one(&listener, &upstream, mode) {
                eprintln!("sympl-wire chaos proxy: {e}");
            }
        });
        Ok(ChaosProxy { addr, handle })
    }

    /// Waits for the proxy thread to finish (it exits once its single
    /// connection has been served and broken).
    pub fn join(self) {
        let _ = self.handle.join();
    }
}

/// Reads one LEB128 varint byte-at-a-time, appending the raw bytes to
/// `raw` so they can be forwarded verbatim.
fn read_varint_raw(r: &mut impl Read, raw: &mut Vec<u8>) -> io::Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        raw.push(b[0]);
        if shift >= 64 {
            return Err(io::Error::other("varint overflow in proxied stream"));
        }
        v |= u64::from(b[0] & 0x7F) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn proxy_one(listener: &TcpListener, upstream: &str, mode: ChaosMode) -> io::Result<()> {
    let (down, _) = listener.accept()?;
    let up = TcpStream::connect(upstream)?;

    // Coordinator→worker is forwarded verbatim on its own thread; the
    // chaos is injected into the worker→coordinator direction only.
    let down_for_copy = down.try_clone()?;
    let up_for_copy = up.try_clone()?;
    let forward = std::thread::spawn(move || {
        let _ = io::copy(&mut &down_for_copy, &mut &up_for_copy);
        let _ = up_for_copy.shutdown(Shutdown::Write);
    });

    let outcome = run_chaos_direction(&up, &down, mode);

    // Tear everything down so the copy thread unblocks whatever happens.
    let _ = down.shutdown(Shutdown::Both);
    let _ = up.shutdown(Shutdown::Both);
    let _ = forward.join();
    outcome
}

/// Forwards the worker preamble then frames downstream, applying `mode`.
fn run_chaos_direction(up: &TcpStream, down: &TcpStream, mode: ChaosMode) -> io::Result<()> {
    let mut reader = BufReader::new(up.try_clone()?);
    let mut writer = down.try_clone()?;

    // Preamble: 4 magic bytes + the varint protocol version.
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    writer.write_all(&magic)?;
    let mut raw = Vec::new();
    let _ = read_varint_raw(&mut reader, &mut raw)?;
    writer.write_all(&raw)?;
    writer.flush()?;

    let mut forwarded = 0usize;
    loop {
        // End of upstream stream at a frame boundary: clean hang-up,
        // forward the close by returning.
        if reader.fill_buf()?.is_empty() {
            return Ok(());
        }
        let mut prefix = Vec::with_capacity(5);
        let len = read_varint_raw(&mut reader, &mut prefix)?;
        let len = usize::try_from(len)
            .ok()
            .filter(|&l| l <= crate::frame::MAX_FRAME_LEN)
            .ok_or_else(|| io::Error::other("oversized frame in proxied stream"))?;
        let mut payload = vec![0u8; len];
        reader.read_exact(&mut payload)?;

        match mode {
            ChaosMode::DropAfterFrames(n) if forwarded >= n => {
                // Drop the connection with this frame unsent.
                return Ok(());
            }
            ChaosMode::DuplicateFrame { frame } if forwarded == frame => {
                // Deliver the frame twice, back to back, then keep
                // forwarding normally.
                writer.write_all(&prefix)?;
                writer.write_all(&payload)?;
                writer.write_all(&prefix)?;
                writer.write_all(&payload)?;
                writer.flush()?;
                forwarded += 1;
            }
            ChaosMode::StallMidFrame { after_frames, hold } if forwarded >= after_frames => {
                // Send the prefix and half the payload, then go silent:
                // the coordinator holds partial bytes it can never
                // complete into a frame.
                writer.write_all(&prefix)?;
                writer.write_all(&payload[..len / 2])?;
                writer.flush()?;
                std::thread::sleep(hold);
                return Ok(());
            }
            _ => {
                writer.write_all(&prefix)?;
                writer.write_all(&payload)?;
                writer.flush()?;
                forwarded += 1;
            }
        }
    }
}
