//! # sympl-wire — cluster-over-network campaigns
//!
//! The paper's evaluation ran its injection campaigns "on a cluster of 150
//! dual-processor AMD Opteron machines". `sympl-cluster` reproduces that
//! harness on in-process threads; this crate takes it over the network: a
//! compact, dependency-free wire protocol for campaign tasks and results,
//! and a `std::net` TCP transport — a coordinator that distributes
//! injection-point shards to remote workers and a worker agent
//! (`symplfied serve --listen <addr>`) that runs them through the exact
//! same engine code path as the in-process pool. The worker side is a
//! *multi-tenant campaign service* ([`WorkerServer::serve_with`]): many
//! concurrent coordinators share one fleet, scheduled fairly by a
//! weighted round-robin [`FairScheduler`] and admitted through a
//! `ClientHello`/`ClientAccept` session handshake bounded by a
//! `--max-clients` accept gate.
//!
//! ## Protocol summary
//!
//! The full versioned byte-level specification — preamble and version
//! negotiation, the frame table, the session/conversation state machines,
//! elastic membership, shard splitting, and the checkpoint (`SYCP`) and
//! memo (`SYMO`) file formats — lives in **`docs/PROTOCOL.md`** at the
//! repository root; the operator's guide to running fleets is
//! **`docs/OPERATIONS.md`**. The short version:
//!
//! - Every connection opens with a symmetric preamble (`b"SYWR"` +
//!   varint [`PROTOCOL_VERSION`], currently 4); any mismatch refuses the
//!   connection before a single frame is exchanged.
//! - After the preamble the connection is varint-length-prefixed frames
//!   (capped at [`MAX_FRAME_LEN`]), each a tag byte plus a
//!   self-delimiting body built from the workspace's varint codecs — no
//!   serde, byte-stable against the golden vectors under
//!   `tests/wire_golden/`.
//! - A coordinator session announces itself with `ClientHello` (label +
//!   scheduling priority, v4) and then runs the supervised
//!   request/response loop: `Task`, `Heartbeat`s at the cadence the task
//!   frame carries, `TaskDone`/`Error`, until the queue drains; liveness
//!   is derived from the heartbeat cadence via [`liveness_deadline`],
//!   never from task budgets, and failures re-queue with the
//!   deterministic [`backoff_delay`].
//! - Late workers join a *running* campaign with `Register`/`Welcome`
//!   (v3) and idle workers can reclaim work through outcome-preserving
//!   shard splits; neither membership nor scheduling ever feeds the
//!   outcome digest.
//!
//! ### Determinism contract
//!
//! Task sharding ([`sympl_cluster::shard_specs`]), per-task execution
//! ([`sympl_cluster::run_task_spec`]), and result pooling
//! ([`sympl_cluster::pool_results`]) are the *same functions* the
//! in-process pool uses; the coordinator ships the resolved point-workers
//! share with every task so a remote machine's core count cannot change
//! the searches. A distributed campaign whose point searches run
//! sequentially (`ClusterConfig::point_workers_hint = Some(1)`) or run to
//! exhaustion therefore reproduces the in-process campaign's
//! [`sympl_cluster::CampaignReport`] verbatim — same per-task outcome
//! counts, same findings in the same canonical order, same witness
//! traces, same [`sympl_cluster::CampaignReport::outcome_digest`]. Only
//! the wall-clock fields (`elapsed`, per-task `elapsed`) differ. The
//! contract is tenant-blind: a campaign interleaved with other clients on
//! a shared service hits the same digest as a run with the fleet to
//! itself. The `distributed-campaign` CI job gates on exactly this
//! contract with loopback worker processes — including two campaigns run
//! concurrently against one shared fleet (`just service-demo`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod checkpoint;
mod frame;
mod proto;
pub mod service;
mod transport;

use std::fmt;
use std::io;
use std::time::Duration;

pub use checkpoint::{
    campaign_key, load_checkpoint, parse_checkpoint, CheckpointFile, CheckpointWriter,
    CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use frame::{
    handshake, read_frame, read_preamble, write_frame, write_preamble, MAGIC, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
pub use proto::{decode_finding, decode_task_result, encode_finding, encode_task_result};
pub use proto::{decode_message, encode_message, Message, TaskFrame};
pub use service::{ClientStats, FairScheduler, ServeOptions, ServiceStats, DEFAULT_MAX_CLIENTS};
pub use transport::{
    backoff_delay, join_coordinator, liveness_deadline, run_distributed, run_distributed_with,
    shutdown_worker, spawn_loopback_workers, CampaignJob, ChaosPlan, DistOptions, ProgramResolver,
    SpawnedWorkers, WorkerServer, DEFAULT_HEARTBEAT_INTERVAL, LISTENING_PREFIX, MAX_SPLIT_DEPTH,
    MIN_HEARTBEAT_INTERVAL,
};

pub use sympl_symbolic::CodecError;

/// A transport- or protocol-level failure.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(io::Error),
    /// A frame payload did not decode.
    Codec(CodecError),
    /// The peer's preamble did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol revision.
    VersionMismatch {
        /// Our [`PROTOCOL_VERSION`].
        ours: u64,
        /// The version the peer announced.
        theirs: u64,
    },
    /// A frame announced a payload larger than [`MAX_FRAME_LEN`].
    FrameTooLarge(usize),
    /// The peer closed the connection at a frame boundary.
    Disconnected,
    /// The peer reported an application-level error (e.g. an unknown
    /// program id or a program-digest mismatch).
    Remote(String),
    /// The peer sent a message that makes no sense in the current
    /// conversation state (e.g. a `Task` frame sent to a coordinator).
    UnexpectedMessage(&'static str),
    /// Tasks remained after every worker connection failed or was
    /// exhausted; the campaign could not complete.
    NoWorkersLeft {
        /// Tasks still unfinished when the last worker was lost.
        pending: usize,
    },
    /// A connection with a task in flight went silent past its
    /// heartbeat-derived liveness deadline; the worker is declared dead.
    LivenessExpired {
        /// How long the connection had been silent.
        silent_for: Duration,
    },
    /// The in-flight task was cancelled because the campaign is aborting.
    TaskCancelled,
    /// The coordinator was deliberately aborted mid-campaign by the chaos
    /// plan (a deterministic stand-in for a coordinator crash); the
    /// checkpoint file holds everything completed so far.
    CoordinatorAborted {
        /// Task results pooled (and checkpointed) before the abort.
        completed: usize,
    },
    /// A checkpoint file does not belong to this campaign (different
    /// program, config, or sharding) and cannot be resumed from.
    StaleCheckpoint(String),
    /// A checkpoint record failed its digest or structure check — the
    /// file is damaged beyond the crash-truncated tail the loader
    /// tolerates.
    CheckpointCorrupt {
        /// Byte offset of the damaged record.
        offset: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Codec(e) => write!(f, "malformed frame: {e}"),
            WireError::BadMagic(m) => write!(f, "peer sent bad magic {m:02x?}"),
            WireError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer's {theirs}")
            }
            WireError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds the cap"),
            WireError::Disconnected => f.write_str("peer disconnected"),
            WireError::Remote(msg) => write!(f, "peer error: {msg}"),
            WireError::UnexpectedMessage(what) => {
                write!(f, "peer sent an out-of-place {what} frame")
            }
            WireError::NoWorkersLeft { pending } => {
                write!(f, "no workers left with {pending} task(s) pending")
            }
            WireError::LivenessExpired { silent_for } => {
                write!(
                    f,
                    "worker silent for {silent_for:?}, past its liveness deadline"
                )
            }
            WireError::TaskCancelled => f.write_str("task cancelled by campaign abort"),
            WireError::CoordinatorAborted { completed } => {
                write!(
                    f,
                    "coordinator aborted by chaos plan after {completed} completed task(s)"
                )
            }
            WireError::StaleCheckpoint(why) => {
                write!(f, "checkpoint is stale for this campaign: {why}")
            }
            WireError::CheckpointCorrupt { offset } => {
                write!(f, "checkpoint record at byte {offset} is corrupt")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Disconnected
        } else {
            WireError::Io(e)
        }
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

/// A deterministic FNV-128 digest of a program's listing, carried in every
/// task frame. Workers refuse tasks whose digest does not match the
/// program they resolved for the task's program id, so a version-skewed
/// worker (different workload revision under the same name) fails loudly
/// instead of silently computing a different campaign.
#[must_use]
pub fn program_digest(program: &sympl_asm::Program) -> u128 {
    use std::hash::Hasher as _;
    let mut h = sympl_symbolic::Fnv128Hasher::new();
    h.write(program.listing().as_bytes());
    h.finish128()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::parse_program;

    #[test]
    fn program_digest_is_content_pure() {
        let a = parse_program("read $1\nprint $1\nhalt").unwrap();
        let b = parse_program("read $1\nprint $1\nhalt").unwrap();
        let c = parse_program("read $2\nprint $2\nhalt").unwrap();
        assert_eq!(program_digest(&a), program_digest(&b));
        assert_ne!(program_digest(&a), program_digest(&c));
    }

    #[test]
    fn wire_errors_render() {
        let errors: Vec<WireError> = vec![
            io::Error::new(io::ErrorKind::ConnectionRefused, "nope").into(),
            io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into(),
            CodecError::UnexpectedEnd.into(),
            WireError::BadMagic(*b"HTTP"),
            WireError::VersionMismatch { ours: 1, theirs: 2 },
            WireError::FrameTooLarge(usize::MAX),
            WireError::Remote("unknown program".into()),
            WireError::UnexpectedMessage("task"),
            WireError::NoWorkersLeft { pending: 3 },
            WireError::LivenessExpired {
                silent_for: Duration::from_secs(3),
            },
            WireError::TaskCancelled,
            WireError::CoordinatorAborted { completed: 5 },
            WireError::StaleCheckpoint("campaign key mismatch".into()),
            WireError::CheckpointCorrupt { offset: 42 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
        assert!(matches!(
            WireError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof")),
            WireError::Disconnected
        ));
    }
}
