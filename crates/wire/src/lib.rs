//! # sympl-wire — cluster-over-network campaigns
//!
//! The paper's evaluation ran its injection campaigns "on a cluster of 150
//! dual-processor AMD Opteron machines". `sympl-cluster` reproduces that
//! harness on in-process threads; this crate takes it over the network: a
//! compact, dependency-free wire protocol for campaign tasks and results,
//! and a `std::net` TCP transport — a coordinator that distributes
//! injection-point shards to remote workers and a worker agent
//! (`symplfied serve --listen <addr>`) that runs them through the exact
//! same engine code path as the in-process pool.
//!
//! ## Protocol specification
//!
//! The protocol rides entirely on the varint codec primitives the disk
//! -spilling frontier introduced (`sympl_symbolic::codec` leaf encoders,
//! `sympl_machine::codec::encode_state`, `sympl_check::codec` report and
//! limits records, `sympl_inject::codec` injection points) — no serde, no
//! third-party dependency, byte-stable against the golden vectors checked
//! in under `tests/wire_golden/`.
//!
//! ### Connection preamble (version negotiation)
//!
//! Immediately after `accept`/`connect`, **both** sides write and then
//! read a preamble:
//!
//! ```text
//! magic: 4 bytes  b"SYWR"
//! version: varint  (PROTOCOL_VERSION, currently 3)
//! ```
//!
//! A peer that sees a wrong magic or a version it does not speak closes
//! the connection and surfaces [`WireError::BadMagic`] /
//! [`WireError::VersionMismatch`]; nothing else is ever sent on such a
//! connection, so an old worker can never silently mis-decode a newer
//! coordinator's frames (and vice versa). Any byte-format change to the
//! frames below MUST bump [`PROTOCOL_VERSION`]. Negotiation is symmetric
//! and all-or-nothing — version 2 (the fault-tolerance revision: the
//! `Heartbeat`/`Cancel` frames and the task frame's trailing heartbeat
//! cadence) is refused at the preamble by a v1 peer, so a v1 worker can
//! never mis-decode the extended task frame as trailing garbage; version
//! 3 (the elastic-membership revision: the `Register`/`Welcome` frames)
//! is likewise refused by a v2 peer, which would otherwise choke on an
//! unknown message tag mid-conversation.
//!
//! ### Frames
//!
//! After the preamble the connection is a sequence of frames, each:
//!
//! ```text
//! length: varint        — payload byte count (hard-capped, see MAX_FRAME_LEN)
//! payload: length bytes — tag byte + message body
//! ```
//!
//! Messages ([`Message`]):
//!
//! | tag | message | body |
//! |-----|---------|------|
//! | 0 | `Task` | task id, program id + FNV-128 program digest, input stream, injection points, predicate, full `SearchLimits` (watchdog/fork bounds, state/solution/time budgets, frontier policy, spill budget), task budget, finding cap, point-workers share, heartbeat cadence (v2) |
//! | 1 | `TaskDone` | the `TaskResult` statistics plus every `Finding` (injection point, terminal state via the state codec, witness trace) |
//! | 2 | `Error` | human-readable reason (unknown program id, digest mismatch, …) |
//! | 3 | `Shutdown` | empty — coordinator asks the worker process to exit |
//! | 4 | `Heartbeat` | empty — worker→coordinator liveness signal, sent at the task frame's cadence while a task is in flight (v2) |
//! | 5 | `Cancel` | empty — coordinator asks the worker to stop the in-flight task at the next injection-point boundary (v2) |
//! | 6 | `Register` | worker label (free-form string, diagnostic only) — worker→coordinator admission request on a join connection (v3) |
//! | 7 | `Welcome` | program id + FNV-128 program digest — coordinator→worker admission grant, announcing the campaign's program identity (v3) |
//!
//! Every record inside a payload is self-delimiting (tag bytes for variant
//! choices, varints for counts), so a frame decodes without out-of-band
//! schema knowledge and truncation/corruption surfaces as a
//! [`CodecError`], never a wrong value.
//!
//! ### Conversation
//!
//! The coordinator opens one connection per worker address and runs a
//! supervised request/response loop: send `Task`, then consume
//! `Heartbeat` frames until `TaskDone` (or `Error`) arrives, repeat
//! until the shared task queue drains. While a task is in flight the
//! worker beats at the cadence the task frame carries; a connection
//! silent past [`liveness_deadline`] (derived from that cadence, *never*
//! from the task budget, so unbudgeted tasks are just as supervised) is
//! declared dead. A dead, refusing, or erroring worker has its in-flight
//! task re-queued for the survivors after a deterministic, jitter-free
//! exponential [`backoff_delay`] — the campaign degrades gracefully
//! (finishing with `degraded: true` and loss counters in the report)
//! rather than aborting, as long as one worker remains; only a task that
//! fails on *every* worker aborts the campaign. A campaign abort sends
//! the in-flight workers `Cancel`, which they honour at the next
//! injection-point boundary. Workers are single-conversation: `serve`
//! handles one connection at a time and goes back to `accept` when the
//! coordinator hangs up, or exits on `Shutdown`.
//!
//! ### Membership state machine (elastic fleets, v3)
//!
//! With [`DistOptions::join_listener`] set, the fleet is *dynamic*:
//! membership is per-connection state on the coordinator, and every
//! worker connection — pre-listed or late-joining — moves through the
//! same three states:
//!
//! ```text
//! joining ──(preamble + Register/Welcome ok)──► active ──(heartbeat loss,
//!    │                                            │        socket error,
//!    └──(bad preamble / version mismatch /        │        clean Shutdown)
//!        non-Register first frame: refused,       ▼
//!        listener keeps serving)               lost (in-flight shard
//!                                                   re-queued for the rest)
//! ```
//!
//! - **joining** — a connection accepted on the join listener that has
//!   completed the preamble and sent `Register`; the coordinator answers
//!   `Welcome` (program id + digest, so the joiner can pre-warm) and the
//!   connection becomes a worker like any other. A malformed preamble,
//!   version mismatch, or any first frame other than `Register` refuses
//!   *that connection only*. Pre-listed workers skip this state: their
//!   connections are dialled by the coordinator and start active.
//! - **active** — pulling from the shared task queue; supervised by the
//!   same heartbeat/liveness machinery, counted in the retry budget (a
//!   fleet that grew tolerates more per-task failures).
//! - **lost** — departure by heartbeat loss, socket error, or hang-up
//!   degrades exactly as a fixed fleet does: the in-flight shard is
//!   re-queued with deterministic backoff and the report's loss counters
//!   tick. There is no rejoin: a worker that comes back is a fresh
//!   `Register`.
//!
//! ### Shard splitting and re-queue rules (v3)
//!
//! With [`DistOptions::split_idle`] set, an idle worker (empty queue,
//! shards still in flight) asks the coordinator to reclaim work: the
//! *largest* in-flight shard is sent `Cancel`, its partial work is
//! discarded (the worker answers `Error`, the acknowledgement), and the
//! shard's points re-queue as two contiguous halves
//! ([`sympl_cluster::split_spec`]) carrying the parent's task id — the
//! PR 2 steal-half discipline lifted to the wire. The rules that keep the
//! digest fixed:
//!
//! - Splitting is refused wholesale unless
//!   [`sympl_cluster::split_preserves_outcome`] holds for every shard (no
//!   task budget, finding cap that can never bind) — the only regime in
//!   which a shard's outcome equals the sum of its halves'.
//! - A completion racing the split-`Cancel` wins: the shard is done and
//!   no split happens.
//! - Halves may split again, down to [`MAX_SPLIT_DEPTH`]; a poisonous
//!   shard fragments into at most `2^MAX_SPLIT_DEPTH` pieces.
//! - Parts re-assemble on the coordinator keyed by point-range offset;
//!   when they cover the parent shard contiguously they merge in offset
//!   order ([`sympl_cluster::merge_part_results`]) — canonical point
//!   order — and only the merged whole shard is pooled and checkpointed.
//!   Duplicate part delivery is idempotent (first writer wins per range).
//!
//! The `CampaignReport`'s `workers_joined`/`tasks_split` counters record
//! the schedule; like the loss counters they never feed the outcome
//! digest.
//!
//! ### Checkpoint file format
//!
//! With [`DistOptions::checkpoint`] set, the coordinator appends every
//! completed task to a checkpoint file, and [`DistOptions::resume`]
//! seeds a later run from one, re-queuing only the missing shards:
//!
//! ```text
//! magic: 4 bytes              b"SYCP"
//! checkpoint version: varint  (CHECKPOINT_VERSION, currently 1)
//! protocol version: varint    (PROTOCOL_VERSION the records encode under)
//! campaign key: 2 varints     (FNV-128 over program digest + input +
//!                              predicate + limits + budgets + sharding +
//!                              every injection point — a stale or
//!                              foreign checkpoint is refused)
//! tasks total: varint
//! record*:                    one per completed task, appended + flushed
//!   payload length: varint
//!   payload: length bytes     (TaskResult + findings, TaskDone encoding)
//!   payload digest: 16 bytes  (FNV-128, little-endian)
//! ```
//!
//! A coordinator killed mid-append leaves at most one truncated trailing
//! record, which the loader drops; any other damage (a flipped byte, a
//! bad digest, trailing garbage) is corruption and refuses to load. Task
//! execution is deterministic, so a resumed run's merged report
//! reproduces the uninterrupted run's
//! [`sympl_cluster::CampaignReport::outcome_digest`] verbatim — the
//! chaos acceptance suite and the `distributed-campaign` CI job gate on
//! exactly that.
//!
//! ### Determinism contract
//!
//! Task sharding ([`sympl_cluster::shard_specs`]), per-task execution
//! ([`sympl_cluster::run_task_spec`]), and result pooling
//! ([`sympl_cluster::pool_results`]) are the *same functions* the
//! in-process pool uses; the coordinator ships the resolved point-workers
//! share with every task so a remote machine's core count cannot change
//! the searches. A distributed campaign whose point searches run
//! sequentially (`ClusterConfig::point_workers_hint = Some(1)`) or run to
//! exhaustion therefore reproduces the in-process campaign's
//! [`sympl_cluster::CampaignReport`] verbatim — same per-task outcome
//! counts, same findings in the same canonical order, same witness
//! traces, same [`sympl_cluster::CampaignReport::outcome_digest`]. Only
//! the wall-clock fields (`elapsed`, per-task `elapsed`) differ. The
//! `distributed-campaign` CI job gates on exactly this contract with a
//! loopback coordinator and two worker processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod checkpoint;
mod frame;
mod proto;
mod transport;

use std::fmt;
use std::io;
use std::time::Duration;

pub use checkpoint::{
    campaign_key, load_checkpoint, parse_checkpoint, CheckpointFile, CheckpointWriter,
    CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use frame::{
    handshake, read_frame, read_preamble, write_frame, write_preamble, MAGIC, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
pub use proto::{decode_finding, decode_task_result, encode_finding, encode_task_result};
pub use proto::{decode_message, encode_message, Message, TaskFrame};
pub use transport::{
    backoff_delay, join_coordinator, liveness_deadline, run_distributed, run_distributed_with,
    spawn_loopback_workers, CampaignJob, ChaosPlan, DistOptions, ProgramResolver, SpawnedWorkers,
    WorkerServer, DEFAULT_HEARTBEAT_INTERVAL, LISTENING_PREFIX, MAX_SPLIT_DEPTH,
    MIN_HEARTBEAT_INTERVAL,
};

pub use sympl_symbolic::CodecError;

/// A transport- or protocol-level failure.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(io::Error),
    /// A frame payload did not decode.
    Codec(CodecError),
    /// The peer's preamble did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol revision.
    VersionMismatch {
        /// Our [`PROTOCOL_VERSION`].
        ours: u64,
        /// The version the peer announced.
        theirs: u64,
    },
    /// A frame announced a payload larger than [`MAX_FRAME_LEN`].
    FrameTooLarge(usize),
    /// The peer closed the connection at a frame boundary.
    Disconnected,
    /// The peer reported an application-level error (e.g. an unknown
    /// program id or a program-digest mismatch).
    Remote(String),
    /// The peer sent a message that makes no sense in the current
    /// conversation state (e.g. a `Task` frame sent to a coordinator).
    UnexpectedMessage(&'static str),
    /// Tasks remained after every worker connection failed or was
    /// exhausted; the campaign could not complete.
    NoWorkersLeft {
        /// Tasks still unfinished when the last worker was lost.
        pending: usize,
    },
    /// A connection with a task in flight went silent past its
    /// heartbeat-derived liveness deadline; the worker is declared dead.
    LivenessExpired {
        /// How long the connection had been silent.
        silent_for: Duration,
    },
    /// The in-flight task was cancelled because the campaign is aborting.
    TaskCancelled,
    /// The coordinator was deliberately aborted mid-campaign by the chaos
    /// plan (a deterministic stand-in for a coordinator crash); the
    /// checkpoint file holds everything completed so far.
    CoordinatorAborted {
        /// Task results pooled (and checkpointed) before the abort.
        completed: usize,
    },
    /// A checkpoint file does not belong to this campaign (different
    /// program, config, or sharding) and cannot be resumed from.
    StaleCheckpoint(String),
    /// A checkpoint record failed its digest or structure check — the
    /// file is damaged beyond the crash-truncated tail the loader
    /// tolerates.
    CheckpointCorrupt {
        /// Byte offset of the damaged record.
        offset: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Codec(e) => write!(f, "malformed frame: {e}"),
            WireError::BadMagic(m) => write!(f, "peer sent bad magic {m:02x?}"),
            WireError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer's {theirs}")
            }
            WireError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds the cap"),
            WireError::Disconnected => f.write_str("peer disconnected"),
            WireError::Remote(msg) => write!(f, "peer error: {msg}"),
            WireError::UnexpectedMessage(what) => {
                write!(f, "peer sent an out-of-place {what} frame")
            }
            WireError::NoWorkersLeft { pending } => {
                write!(f, "no workers left with {pending} task(s) pending")
            }
            WireError::LivenessExpired { silent_for } => {
                write!(
                    f,
                    "worker silent for {silent_for:?}, past its liveness deadline"
                )
            }
            WireError::TaskCancelled => f.write_str("task cancelled by campaign abort"),
            WireError::CoordinatorAborted { completed } => {
                write!(
                    f,
                    "coordinator aborted by chaos plan after {completed} completed task(s)"
                )
            }
            WireError::StaleCheckpoint(why) => {
                write!(f, "checkpoint is stale for this campaign: {why}")
            }
            WireError::CheckpointCorrupt { offset } => {
                write!(f, "checkpoint record at byte {offset} is corrupt")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Disconnected
        } else {
            WireError::Io(e)
        }
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

/// A deterministic FNV-128 digest of a program's listing, carried in every
/// task frame. Workers refuse tasks whose digest does not match the
/// program they resolved for the task's program id, so a version-skewed
/// worker (different workload revision under the same name) fails loudly
/// instead of silently computing a different campaign.
#[must_use]
pub fn program_digest(program: &sympl_asm::Program) -> u128 {
    use std::hash::Hasher as _;
    let mut h = sympl_symbolic::Fnv128Hasher::new();
    h.write(program.listing().as_bytes());
    h.finish128()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::parse_program;

    #[test]
    fn program_digest_is_content_pure() {
        let a = parse_program("read $1\nprint $1\nhalt").unwrap();
        let b = parse_program("read $1\nprint $1\nhalt").unwrap();
        let c = parse_program("read $2\nprint $2\nhalt").unwrap();
        assert_eq!(program_digest(&a), program_digest(&b));
        assert_ne!(program_digest(&a), program_digest(&c));
    }

    #[test]
    fn wire_errors_render() {
        let errors: Vec<WireError> = vec![
            io::Error::new(io::ErrorKind::ConnectionRefused, "nope").into(),
            io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into(),
            CodecError::UnexpectedEnd.into(),
            WireError::BadMagic(*b"HTTP"),
            WireError::VersionMismatch { ours: 1, theirs: 2 },
            WireError::FrameTooLarge(usize::MAX),
            WireError::Remote("unknown program".into()),
            WireError::UnexpectedMessage("task"),
            WireError::NoWorkersLeft { pending: 3 },
            WireError::LivenessExpired {
                silent_for: Duration::from_secs(3),
            },
            WireError::TaskCancelled,
            WireError::CoordinatorAborted { completed: 5 },
            WireError::StaleCheckpoint("campaign key mismatch".into()),
            WireError::CheckpointCorrupt { offset: 42 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
        assert!(matches!(
            WireError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof")),
            WireError::Disconnected
        ));
    }
}
