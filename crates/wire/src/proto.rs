//! The message vocabulary: campaign tasks and results as byte payloads.
//!
//! Each payload is a tag byte plus a body assembled from the layered
//! codecs: leaf varints (`sympl_symbolic::codec`), machine states
//! (`sympl_machine::codec`), report/limits records (`sympl_check::codec`),
//! and injection points (`sympl_inject::codec`). See the crate docs for
//! the frame table.

use std::time::Duration;

use sympl_check::codec::{
    decode_i64_seq, decode_predicate, decode_search_limits, decode_solution, encode_i64_seq,
    encode_predicate, encode_search_limits, encode_solution,
};
use sympl_check::{Predicate, SearchLimits};
use sympl_cluster::{Finding, TaskResult, TaskSpec};
use sympl_inject::codec::{decode_point, encode_point};
use sympl_symbolic::codec::{
    decode_bool, decode_duration, decode_opt_duration, decode_str, decode_u64, encode_bool,
    encode_duration, encode_opt_duration, encode_str, encode_u64,
};

use crate::CodecError;

const MSG_TASK: u8 = 0;
const MSG_TASK_DONE: u8 = 1;
const MSG_ERROR: u8 = 2;
const MSG_SHUTDOWN: u8 = 3;
const MSG_HEARTBEAT: u8 = 4;
const MSG_CANCEL: u8 = 5;
const MSG_REGISTER: u8 = 6;
const MSG_WELCOME: u8 = 7;
const MSG_CLIENT_HELLO: u8 = 8;
const MSG_CLIENT_ACCEPT: u8 = 9;

/// One campaign task as shipped to a remote worker: everything
/// [`sympl_cluster::run_task_spec`] needs, plus the program identity the
/// worker resolves and verifies.
#[derive(Debug, Clone)]
pub struct TaskFrame {
    /// The program the worker must resolve (a bundled workload name, e.g.
    /// `"tcas"`).
    pub program_id: String,
    /// FNV-128 digest of the resolved program's listing
    /// ([`crate::program_digest`]); the worker refuses the task on
    /// mismatch, so version skew fails loudly.
    pub program_digest: u128,
    /// The campaign's input stream.
    pub input: Vec<i64>,
    /// The task shard: id plus the injection points to sweep.
    pub spec: TaskSpec,
    /// The outcome predicate (wire-encodable variants only).
    pub predicate: Predicate,
    /// Per-point search budgets, frontier policy, and spill budget.
    pub search: SearchLimits,
    /// Wall-clock budget for the whole task.
    pub task_budget: Option<Duration>,
    /// Finding cap for the task (the paper capped at 10).
    pub max_findings: usize,
    /// The resolved point-search worker share the coordinator computed —
    /// shipped explicitly so the remote machine's core count cannot
    /// change which engine runs (the determinism contract).
    pub point_workers: usize,
    /// The heartbeat cadence the worker must keep while this task is in
    /// flight: at least one `Heartbeat` (or the final `TaskDone`) frame
    /// per interval. The coordinator derives its per-connection liveness
    /// deadline from this value, so liveness never depends on the task
    /// budget — an unbudgeted task on a healthy worker heartbeats
    /// forever, while a wedged worker is detected within a few intervals.
    pub heartbeat_interval: Duration,
}

/// A protocol message (one frame payload).
#[derive(Debug)]
pub enum Message {
    /// Coordinator → worker: run this task.
    Task(TaskFrame),
    /// Worker → coordinator: the task's results.
    TaskDone {
        /// The per-task statistics, exactly as the in-process pool
        /// produces them.
        result: TaskResult,
        /// Every finding, with its terminal state and witness trace.
        findings: Vec<Finding>,
    },
    /// Worker → coordinator: the task was refused (unknown program,
    /// digest mismatch, undecodable limits, …) or cancelled.
    Error(String),
    /// Coordinator → worker: drain and exit the serve loop.
    Shutdown,
    /// Worker → coordinator: still alive and computing the in-flight
    /// task. Sent at the task frame's `heartbeat_interval` cadence; the
    /// coordinator's liveness deadline re-arms on every received frame.
    Heartbeat,
    /// Coordinator → worker: stop the in-flight task as soon as
    /// practicable (point-search granularity) and answer with an
    /// `Error("task cancelled")` acknowledgement. Sent when the
    /// coordinator is aborting a campaign, so workers stay healthy for
    /// the next one instead of finishing a doomed sweep.
    Cancel,
    /// Worker → coordinator: request admission into a running campaign
    /// (sent immediately after the preamble on a join connection). The
    /// label is free-form and purely diagnostic — membership never feeds
    /// the campaign key or the outcome digest.
    Register {
        /// A human-readable worker label (host/pid style), for logs.
        worker: String,
    },
    /// Coordinator → worker: admission granted. Carries the campaign's
    /// program identity so the joiner can resolve and warm the program
    /// before its first task arrives (every subsequent `Task` frame
    /// still carries the digest, which the worker re-verifies).
    Welcome {
        /// The bundled workload name the campaign runs.
        program_id: String,
        /// FNV-128 digest of the resolved program's listing.
        program_digest: u128,
    },
    /// Coordinator → worker: the mandatory first frame on a serve
    /// connection (protocol v4). Identifies the client session to the
    /// multi-tenant campaign service: the label is free-form and purely
    /// diagnostic (logs and `ServiceStats`), while the priority is the
    /// client's weight in the service's round-robin scheduler (clamped
    /// to ≥ 1 by the receiver). Neither field feeds the campaign key or
    /// the outcome digest.
    ClientHello {
        /// A human-readable client label (campaign/pid style), for logs
        /// and per-client accounting.
        client: String,
        /// The scheduling weight: a backlogged client receives `priority`
        /// task slots per scheduler round.
        priority: u64,
    },
    /// Worker → coordinator: session admitted. A full service answers a
    /// `ClientHello` with a typed `Error` frame instead.
    ClientAccept {
        /// The service-assigned session id, echoed in status log lines.
        client_id: u64,
    },
}

fn decode_usize(bytes: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    usize::try_from(decode_u64(bytes, pos)?).map_err(|_| CodecError::Overflow)
}

pub(crate) fn encode_u128(v: u128, buf: &mut Vec<u8>) {
    encode_u64(v as u64, buf);
    encode_u64((v >> 64) as u64, buf);
}

pub(crate) fn decode_u128(bytes: &[u8], pos: &mut usize) -> Result<u128, CodecError> {
    let lo = decode_u64(bytes, pos)?;
    let hi = decode_u64(bytes, pos)?;
    Ok(u128::from(lo) | (u128::from(hi) << 64))
}

/// Appends a [`TaskResult`] record. The process-local cache statistics
/// (`memo_hits`, `memo_states_skipped`, `prefix_steps_saved`) are not
/// encoded — see [`decode_task_result`].
pub fn encode_task_result(result: &TaskResult, buf: &mut Vec<u8>) {
    encode_u64(result.id as u64, buf);
    encode_u64(result.points_examined as u64, buf);
    encode_u64(result.points_total as u64, buf);
    encode_u64(result.activated as u64, buf);
    encode_u64(result.findings as u64, buf);
    encode_bool(result.completed, buf);
    encode_duration(result.elapsed, buf);
    encode_u64(result.states_explored as u64, buf);
    encode_u64(result.point_workers as u64, buf);
    encode_u64(result.steals as u64, buf);
    encode_u64(result.peak_frontier_len as u64, buf);
    encode_u64(result.peak_frontier_bytes as u64, buf);
    encode_u64(result.spilled_states as u64, buf);
}

/// Decodes a [`TaskResult`] at `*pos`, advancing it.
///
/// # Errors
///
/// Any [`CodecError`] on truncated or malformed bytes.
pub fn decode_task_result(bytes: &[u8], pos: &mut usize) -> Result<TaskResult, CodecError> {
    Ok(TaskResult {
        id: decode_usize(bytes, pos)?,
        points_examined: decode_usize(bytes, pos)?,
        points_total: decode_usize(bytes, pos)?,
        activated: decode_usize(bytes, pos)?,
        findings: decode_usize(bytes, pos)?,
        completed: decode_bool(bytes, pos)?,
        elapsed: decode_duration(bytes, pos)?,
        states_explored: decode_usize(bytes, pos)?,
        point_workers: decode_usize(bytes, pos)?,
        steals: decode_usize(bytes, pos)?,
        peak_frontier_len: decode_usize(bytes, pos)?,
        peak_frontier_bytes: decode_usize(bytes, pos)?,
        spilled_states: decode_usize(bytes, pos)?,
        // Process-local cache statistics (memo hits, prefix steps) are
        // deliberately not on the wire: they describe one worker's local
        // caches, not the task's outcome, and keeping them out preserves
        // the checked-in golden frame vectors byte-for-byte.
        memo_hits: 0,
        memo_states_skipped: 0,
        prefix_steps_saved: 0,
    })
}

/// Appends a [`Finding`] record.
pub fn encode_finding(finding: &Finding, buf: &mut Vec<u8>) {
    encode_u64(finding.task_id as u64, buf);
    encode_point(&finding.point, buf);
    encode_solution(&finding.solution, buf);
}

/// Decodes a [`Finding`] at `*pos`, advancing it.
///
/// # Errors
///
/// Any [`CodecError`] on truncated or malformed bytes.
pub fn decode_finding(bytes: &[u8], pos: &mut usize) -> Result<Finding, CodecError> {
    Ok(Finding {
        task_id: decode_usize(bytes, pos)?,
        point: decode_point(bytes, pos)?,
        solution: decode_solution(bytes, pos)?,
    })
}

/// Encodes a [`Message`] into a frame payload.
///
/// # Errors
///
/// [`CodecError::Unsupported`] when a task frame carries a
/// closure-backed [`Predicate::Custom`].
pub fn encode_message(message: &Message) -> Result<Vec<u8>, CodecError> {
    let mut buf = Vec::new();
    match message {
        Message::Task(task) => {
            buf.push(MSG_TASK);
            encode_str(&task.program_id, &mut buf);
            encode_u128(task.program_digest, &mut buf);
            encode_i64_seq(&task.input, &mut buf);
            encode_u64(task.spec.id as u64, &mut buf);
            encode_u64(task.spec.points.len() as u64, &mut buf);
            for point in &task.spec.points {
                encode_point(point, &mut buf);
            }
            encode_predicate(&task.predicate, &mut buf)?;
            encode_search_limits(&task.search, &mut buf);
            encode_opt_duration(task.task_budget, &mut buf);
            encode_u64(task.max_findings as u64, &mut buf);
            encode_u64(task.point_workers as u64, &mut buf);
            encode_duration(task.heartbeat_interval, &mut buf);
        }
        Message::TaskDone { result, findings } => {
            buf.push(MSG_TASK_DONE);
            encode_task_result(result, &mut buf);
            encode_u64(findings.len() as u64, &mut buf);
            for finding in findings {
                encode_finding(finding, &mut buf);
            }
        }
        Message::Error(msg) => {
            buf.push(MSG_ERROR);
            encode_str(msg, &mut buf);
        }
        Message::Shutdown => buf.push(MSG_SHUTDOWN),
        Message::Heartbeat => buf.push(MSG_HEARTBEAT),
        Message::Cancel => buf.push(MSG_CANCEL),
        Message::Register { worker } => {
            buf.push(MSG_REGISTER);
            encode_str(worker, &mut buf);
        }
        Message::Welcome {
            program_id,
            program_digest,
        } => {
            buf.push(MSG_WELCOME);
            encode_str(program_id, &mut buf);
            encode_u128(*program_digest, &mut buf);
        }
        Message::ClientHello { client, priority } => {
            buf.push(MSG_CLIENT_HELLO);
            encode_str(client, &mut buf);
            encode_u64(*priority, &mut buf);
        }
        Message::ClientAccept { client_id } => {
            buf.push(MSG_CLIENT_ACCEPT);
            encode_u64(*client_id, &mut buf);
        }
    }
    Ok(buf)
}

/// Decodes a frame payload into a [`Message`], checking that the whole
/// payload is consumed (trailing garbage is corruption, not padding).
///
/// # Errors
///
/// Any [`CodecError`] on truncated, malformed, or over-long payloads.
pub fn decode_message(bytes: &[u8]) -> Result<Message, CodecError> {
    let mut pos = 0usize;
    let &tag = bytes.get(pos).ok_or(CodecError::UnexpectedEnd)?;
    pos += 1;
    let message = match tag {
        MSG_TASK => {
            let program_id = decode_str(bytes, &mut pos)?;
            let program_digest = decode_u128(bytes, &mut pos)?;
            let input = decode_i64_seq(bytes, &mut pos)?;
            let id = decode_usize(bytes, &mut pos)?;
            let n_points = decode_usize(bytes, &mut pos)?;
            let mut points = Vec::with_capacity(n_points.min(1 << 16));
            for _ in 0..n_points {
                points.push(decode_point(bytes, &mut pos)?);
            }
            let predicate = decode_predicate(bytes, &mut pos)?;
            let search = decode_search_limits(bytes, &mut pos)?;
            let task_budget = decode_opt_duration(bytes, &mut pos)?;
            let max_findings = decode_usize(bytes, &mut pos)?;
            let point_workers = decode_usize(bytes, &mut pos)?;
            let heartbeat_interval = decode_duration(bytes, &mut pos)?;
            Message::Task(TaskFrame {
                program_id,
                program_digest,
                input,
                spec: TaskSpec { id, points },
                predicate,
                search,
                task_budget,
                max_findings,
                point_workers,
                heartbeat_interval,
            })
        }
        MSG_TASK_DONE => {
            let result = decode_task_result(bytes, &mut pos)?;
            let n = decode_usize(bytes, &mut pos)?;
            let mut findings = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                findings.push(decode_finding(bytes, &mut pos)?);
            }
            Message::TaskDone { result, findings }
        }
        MSG_ERROR => Message::Error(decode_str(bytes, &mut pos)?),
        MSG_SHUTDOWN => Message::Shutdown,
        MSG_HEARTBEAT => Message::Heartbeat,
        MSG_CANCEL => Message::Cancel,
        MSG_REGISTER => Message::Register {
            worker: decode_str(bytes, &mut pos)?,
        },
        MSG_WELCOME => Message::Welcome {
            program_id: decode_str(bytes, &mut pos)?,
            program_digest: decode_u128(bytes, &mut pos)?,
        },
        MSG_CLIENT_HELLO => Message::ClientHello {
            client: decode_str(bytes, &mut pos)?,
            priority: decode_u64(bytes, &mut pos)?,
        },
        MSG_CLIENT_ACCEPT => Message::ClientAccept {
            client_id: decode_u64(bytes, &mut pos)?,
        },
        tag => {
            return Err(CodecError::BadTag {
                what: "message",
                tag,
            })
        }
    };
    if pos != bytes.len() {
        return Err(CodecError::BadTag {
            what: "trailing bytes after message",
            tag: bytes[pos],
        });
    }
    Ok(message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sympl_asm::Reg;
    use sympl_check::{FrontierPolicy, Solution};
    use sympl_inject::{InjectTarget, InjectionPoint};
    use sympl_machine::MachineState;

    pub(crate) fn sample_task() -> TaskFrame {
        TaskFrame {
            program_id: "tcas".into(),
            program_digest: 0xDEAD_BEEF_0123_4567_89AB_CDEF_0011_2233,
            input: vec![5, -7, 0],
            spec: TaskSpec {
                id: 3,
                points: vec![
                    InjectionPoint::new(10, InjectTarget::Register(Reg::r(4))),
                    InjectionPoint::new(11, InjectTarget::ProgramCounter).at_occurrence(2),
                ],
            },
            predicate: Predicate::WrongOutput { expected: vec![1] },
            search: SearchLimits {
                policy: FrontierPolicy::Dfs,
                max_frontier_bytes: Some(512 << 10),
                ..SearchLimits::default()
            },
            task_budget: Some(Duration::from_secs(30)),
            max_findings: 10,
            point_workers: 1,
            heartbeat_interval: Duration::from_millis(500),
        }
    }

    fn sample_done() -> Message {
        let mut state = MachineState::new();
        state.set_status(sympl_machine::Status::Halted);
        Message::TaskDone {
            result: TaskResult {
                id: 3,
                points_examined: 2,
                points_total: 2,
                activated: 2,
                findings: 1,
                completed: true,
                elapsed: Duration::from_millis(123),
                states_explored: 456,
                point_workers: 1,
                steals: 0,
                peak_frontier_len: 7,
                peak_frontier_bytes: 1024,
                spilled_states: 0,
                memo_hits: 0,
                memo_states_skipped: 0,
                prefix_steps_saved: 0,
            },
            findings: vec![Finding {
                task_id: 3,
                point: InjectionPoint::new(10, InjectTarget::Register(Reg::r(4))),
                solution: Solution {
                    state,
                    trace: vec![0, 1, 2],
                },
            }],
        }
    }

    #[test]
    fn task_frames_roundtrip() {
        let task = sample_task();
        let bytes = encode_message(&Message::Task(task.clone())).unwrap();
        let Message::Task(decoded) = decode_message(&bytes).unwrap() else {
            panic!("wrong message kind");
        };
        assert_eq!(decoded.program_id, task.program_id);
        assert_eq!(decoded.program_digest, task.program_digest);
        assert_eq!(decoded.input, task.input);
        assert_eq!(decoded.spec, task.spec);
        assert_eq!(
            format!("{:?}", decoded.predicate),
            format!("{:?}", task.predicate)
        );
        assert_eq!(decoded.search.policy, task.search.policy);
        assert_eq!(
            decoded.search.max_frontier_bytes,
            task.search.max_frontier_bytes
        );
        assert_eq!(decoded.task_budget, task.task_budget);
        assert_eq!(decoded.max_findings, task.max_findings);
        assert_eq!(decoded.point_workers, task.point_workers);
        assert_eq!(decoded.heartbeat_interval, task.heartbeat_interval);
    }

    #[test]
    fn heartbeat_and_cancel_frames_roundtrip() {
        let bytes = encode_message(&Message::Heartbeat).unwrap();
        assert_eq!(bytes, [MSG_HEARTBEAT], "heartbeats are a single byte");
        assert!(matches!(
            decode_message(&bytes).unwrap(),
            Message::Heartbeat
        ));
        let bytes = encode_message(&Message::Cancel).unwrap();
        assert_eq!(bytes, [MSG_CANCEL], "cancels are a single byte");
        assert!(matches!(decode_message(&bytes).unwrap(), Message::Cancel));
        // Trailing garbage after a control frame is corruption.
        assert!(decode_message(&[MSG_HEARTBEAT, 0]).is_err());
        assert!(decode_message(&[MSG_CANCEL, 0]).is_err());
    }

    #[test]
    fn results_and_control_frames_roundtrip() {
        let done = sample_done();
        let bytes = encode_message(&done).unwrap();
        let decoded = decode_message(&bytes).unwrap();
        let (
            Message::TaskDone {
                result: a,
                findings: fa,
            },
            Message::TaskDone {
                result: b,
                findings: fb,
            },
        ) = (&done, &decoded)
        else {
            panic!("wrong message kind");
        };
        assert_eq!(a, b);
        assert_eq!(fa, fb);

        let bytes = encode_message(&Message::Error("nope".into())).unwrap();
        assert!(matches!(decode_message(&bytes).unwrap(), Message::Error(m) if m == "nope"));
        let bytes = encode_message(&Message::Shutdown).unwrap();
        assert!(matches!(decode_message(&bytes).unwrap(), Message::Shutdown));
    }

    #[test]
    fn membership_frames_roundtrip() {
        let bytes = encode_message(&Message::Register {
            worker: "joiner-7".into(),
        })
        .unwrap();
        assert_eq!(bytes[0], MSG_REGISTER);
        assert!(matches!(
            decode_message(&bytes).unwrap(),
            Message::Register { worker } if worker == "joiner-7"
        ));

        let bytes = encode_message(&Message::Welcome {
            program_id: "tcas".into(),
            program_digest: 0xFEED_FACE_CAFE_BEEF_0123_4567_89AB_CDEF,
        })
        .unwrap();
        assert_eq!(bytes[0], MSG_WELCOME);
        let Message::Welcome {
            program_id,
            program_digest,
        } = decode_message(&bytes).unwrap()
        else {
            panic!("wrong message kind");
        };
        assert_eq!(program_id, "tcas");
        assert_eq!(program_digest, 0xFEED_FACE_CAFE_BEEF_0123_4567_89AB_CDEF);
        // Trailing garbage after either frame is corruption.
        let mut bytes = encode_message(&Message::Register { worker: "w".into() }).unwrap();
        bytes.push(0);
        assert!(decode_message(&bytes).is_err());
    }

    #[test]
    fn session_frames_roundtrip() {
        let bytes = encode_message(&Message::ClientHello {
            client: "tcas-campaign".into(),
            priority: 3,
        })
        .unwrap();
        assert_eq!(bytes[0], MSG_CLIENT_HELLO);
        let Message::ClientHello { client, priority } = decode_message(&bytes).unwrap() else {
            panic!("wrong message kind");
        };
        assert_eq!(client, "tcas-campaign");
        assert_eq!(priority, 3);

        let bytes = encode_message(&Message::ClientAccept { client_id: 42 }).unwrap();
        assert_eq!(bytes[0], MSG_CLIENT_ACCEPT);
        assert!(matches!(
            decode_message(&bytes).unwrap(),
            Message::ClientAccept { client_id: 42 }
        ));
        // Trailing garbage after either frame is corruption.
        let mut bytes = encode_message(&Message::ClientHello {
            client: "c".into(),
            priority: 1,
        })
        .unwrap();
        bytes.push(0);
        assert!(decode_message(&bytes).is_err());
        let mut bytes = encode_message(&Message::ClientAccept { client_id: 1 }).unwrap();
        bytes.push(0);
        assert!(decode_message(&bytes).is_err());
    }

    #[test]
    fn custom_predicates_cannot_cross_the_wire() {
        let mut task = sample_task();
        task.predicate = Predicate::custom(|_| true);
        assert!(matches!(
            encode_message(&Message::Task(task)),
            Err(CodecError::Unsupported(_))
        ));
    }

    #[test]
    fn corrupt_payloads_error_cleanly() {
        assert!(decode_message(&[]).is_err());
        assert!(matches!(
            decode_message(&[77]),
            Err(CodecError::BadTag {
                what: "message",
                ..
            })
        ));
        // Trailing garbage is rejected.
        let mut bytes = encode_message(&Message::Shutdown).unwrap();
        bytes.push(0);
        assert!(decode_message(&bytes).is_err());
        // Truncation anywhere inside a task frame is detected.
        let bytes = encode_message(&Message::Task(sample_task())).unwrap();
        for cut in 0..bytes.len() {
            assert!(decode_message(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
