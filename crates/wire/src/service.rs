//! The multi-tenant campaign service: many coordinators, one worker.
//!
//! [`WorkerServer::serve_with`] turns the worker agent into a shared
//! daemon: every accepted connection becomes a *client session* (one
//! thread each, over the existing framing), admitted by a
//! [`Message::ClientHello`] / [`Message::ClientAccept`] exchange and
//! bounded by [`ServeOptions::max_clients`] — a full service refuses the
//! connection with a typed `Error` frame instead of hanging it. Sessions
//! only move frames; the searches themselves run on a single executor
//! that drains the per-client task queues through a [`FairScheduler`] —
//! weighted round-robin by client-declared priority — so one huge
//! campaign cannot starve a small one. Per-client accounting is surfaced
//! as [`ServiceStats`] (and, with [`ServeOptions::status_interval`], as
//! a periodic stderr status line).
//!
//! Tenancy is invisible to results: each task still runs through
//! [`sympl_cluster::run_task_spec_with_cancel`] with the coordinator's
//! shipped budgets, and each session's replies come back in task order,
//! so a campaign's [`sympl_cluster::CampaignReport::outcome_digest`] is
//! identical to its in-process run no matter how tenants interleave.
//! See `docs/PROTOCOL.md` for the session conversation and
//! `docs/OPERATIONS.md` for running the service.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sympl_asm::Program;
use sympl_cluster::{run_task_spec_with_cancel, ClusterConfig};
use sympl_detect::DetectorSet;

use crate::proto::{Message, TaskFrame};
use crate::transport::{
    lock_recovering, Conn, ProgramResolver, WorkerServer, IDLE_POLL, MIN_HEARTBEAT_INTERVAL,
};
use crate::{program_digest, WireError};

/// The default [`ServeOptions::max_clients`] accept gate.
pub const DEFAULT_MAX_CLIENTS: usize = 16;

/// Options for the multi-tenant service loop
/// ([`WorkerServer::serve_with`]).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The accept gate: at most this many client sessions at once. The
    /// `max_clients + 1`-th concurrent client is refused with a typed
    /// `Error` frame (never silently dropped, never hung).
    pub max_clients: usize,
    /// Print a per-client accounting line to stderr at this cadence
    /// (`serve --status-interval`); `None` disables the status loop.
    pub status_interval: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_clients: DEFAULT_MAX_CLIENTS,
            status_interval: None,
        }
    }
}

/// One client's accounting row in [`ServiceStats`].
#[derive(Debug, Clone)]
pub struct ClientStats {
    /// The service-assigned session id (echoed in the `ClientAccept`).
    pub client_id: u64,
    /// The client's self-declared label, from its `ClientHello`.
    pub label: String,
    /// The client's scheduling weight (clamped to ≥ 1 at admission).
    pub priority: u64,
    /// The session is still connected.
    pub active: bool,
    /// Tasks accepted but not yet picked by the executor.
    pub queued: usize,
    /// Tasks completed (answered with `TaskDone`) so far.
    pub completed: usize,
}

/// A point-in-time snapshot of the service's per-client accounting.
/// Returned by [`WorkerServer::serve_with`] when the service drains, and
/// rendered by the `--status-interval` log line while it runs.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Sessions currently connected.
    pub active_clients: usize,
    /// Connections refused by the [`ServeOptions::max_clients`] gate.
    pub refused_clients: usize,
    /// One row per client session the service has ever admitted
    /// (disconnected sessions stay, marked inactive).
    pub clients: Vec<ClientStats>,
}

impl ServiceStats {
    /// The fairness ratio: max over min of `completed / priority` across
    /// clients that have completed work — 1.0 is perfectly fair service,
    /// and two equal-priority backlogged clients stay within one
    /// scheduler round of each other (the documented fairness bound).
    /// Returns 1.0 when fewer than two clients have completed tasks.
    #[must_use]
    pub fn fairness_ratio(&self) -> f64 {
        let mut served: Vec<f64> = self
            .clients
            .iter()
            .filter(|c| c.completed > 0)
            .map(|c| {
                #[allow(clippy::cast_precision_loss)]
                let per_unit = c.completed as f64 / c.priority.max(1) as f64;
                per_unit
            })
            .collect();
        if served.len() < 2 {
            return 1.0;
        }
        served.sort_by(f64::total_cmp);
        served[served.len() - 1] / served[0]
    }
}

/// The weighted round-robin scheduler the service's executor drains the
/// per-client queues through.
///
/// Each client holds a credit balance; a scheduler *round* grants every
/// client `priority` credits, and [`FairScheduler::pick`] serves the next
/// backlogged client (cursor order) that still has credit, starting a new
/// round only when every backlogged client's balance hits zero. The
/// fairness bound follows: between refills a backlogged client is served
/// exactly `priority` times, so two clients backlogged over the same
/// window have served-counts per unit priority within one round of each
/// other — a small campaign always makes progress while a huge one is in
/// flight.
///
/// Deterministic and allocation-light by design so it can be unit- and
/// property-tested exhaustively; the service drives it under a lock.
#[derive(Debug, Default)]
pub struct FairScheduler {
    /// Round-robin position: the index after the last client served.
    cursor: usize,
    /// Remaining credits this round, indexed like the caller's client
    /// list (new clients join mid-round with zero and wait for the next
    /// refill, so joining cannot jump the queue).
    credits: Vec<u64>,
}

impl FairScheduler {
    /// A fresh scheduler with no clients and no round in progress.
    #[must_use]
    pub fn new() -> Self {
        FairScheduler::default()
    }

    /// Picks the next client to serve. `clients[i]` is `(priority,
    /// backlogged)` for client `i`; the list may grow between calls
    /// (indices must be stable — the service never removes slots).
    /// Returns `None` when no client is backlogged.
    pub fn pick(&mut self, clients: &[(u64, bool)]) -> Option<usize> {
        let n = clients.len();
        if n == 0 {
            return None;
        }
        if self.credits.len() < n {
            self.credits.resize(n, 0);
        }
        // First pass: anyone backlogged with credit left this round?
        for step in 0..n {
            let j = (self.cursor + step) % n;
            if clients[j].1 && self.credits[j] > 0 {
                self.credits[j] -= 1;
                self.cursor = (j + 1) % n;
                return Some(j);
            }
        }
        if !clients.iter().any(|&(_, backlogged)| backlogged) {
            return None;
        }
        // New round: refill every client's credits from its priority.
        for (credit, &(priority, _)) in self.credits.iter_mut().zip(clients) {
            *credit = priority.max(1);
        }
        for step in 0..n {
            let j = (self.cursor + step) % n;
            if clients[j].1 {
                self.credits[j] -= 1;
                self.cursor = (j + 1) % n;
                return Some(j);
            }
        }
        None
    }
}

/// Everything the executor needs to run one queued task.
struct QueuedWork {
    program: Program,
    detectors: DetectorSet,
    task: TaskFrame,
}

/// A submitted task's lifecycle. `Queued → Running → Done → Sent` for the
/// happy path; a cancel can jump `Queued → Done` directly (the executor
/// skips jobs it pops in a non-`Queued` state).
enum JobState {
    Queued(Box<QueuedWork>),
    Running,
    Done(Box<Message>),
    Sent,
}

/// One submitted task, shared between its session thread (which owns the
/// reply ordering) and the executor (which runs it).
struct SessionJob {
    /// The heartbeat cadence the task frame asked for.
    interval: Duration,
    /// Cooperative cancel flag threaded into the search engine.
    cancel: AtomicBool,
    /// The client sent a `Cancel` frame for this job (an incomplete
    /// result is then answered with the cancel acknowledgement `Error`).
    cancelled_by_client: AtomicBool,
    state: Mutex<JobState>,
}

impl SessionJob {
    fn is_incomplete(&self) -> bool {
        matches!(
            *lock_recovering(&self.state),
            JobState::Queued(_) | JobState::Running
        )
    }
}

/// One admitted client's scheduling slot. Slots are appended to the
/// registry and never removed (the [`FairScheduler`] needs stable
/// indices); a closed session just leaves its slot empty and inactive.
struct ClientSlot {
    id: u64,
    label: String,
    priority: u64,
    /// Tasks awaiting the executor, oldest first. Holds only jobs still
    /// in `Queued` state — or jobs a racing cancel just completed, which
    /// the executor pops and skips.
    queue: Mutex<VecDeque<Arc<SessionJob>>>,
    completed: AtomicUsize,
    active: AtomicBool,
}

/// The shared state behind [`WorkerServer::serve_with`].
struct Service<'a> {
    resolve: &'a ProgramResolver<'a>,
    opts: ServeOptions,
    clients: Mutex<Vec<Arc<ClientSlot>>>,
    /// Paired with `sched_cv`: sessions notify after enqueueing, the
    /// executor waits here when every queue is empty.
    sched: Mutex<FairScheduler>,
    sched_cv: Condvar,
    sessions: AtomicUsize,
    /// A client sent `Shutdown`: stop accepting, exit once the last
    /// session closes.
    draining: AtomicBool,
    /// The accept loop is done; executor and status threads must exit.
    stopped: AtomicBool,
    refused: AtomicUsize,
    next_client_id: AtomicU64,
}

impl<'a> Service<'a> {
    fn new(resolve: &'a ProgramResolver<'a>, opts: ServeOptions) -> Self {
        Service {
            resolve,
            opts,
            clients: Mutex::new(Vec::new()),
            sched: Mutex::new(FairScheduler::new()),
            sched_cv: Condvar::new(),
            sessions: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            refused: AtomicUsize::new(0),
            next_client_id: AtomicU64::new(1),
        }
    }

    fn stats(&self) -> ServiceStats {
        let clients = lock_recovering(&self.clients)
            .iter()
            .map(|slot| ClientStats {
                client_id: slot.id,
                label: slot.label.clone(),
                priority: slot.priority,
                active: slot.active.load(Ordering::SeqCst),
                queued: lock_recovering(&slot.queue).len(),
                completed: slot.completed.load(Ordering::SeqCst),
            })
            .collect();
        ServiceStats {
            active_clients: self.sessions.load(Ordering::SeqCst),
            refused_clients: self.refused.load(Ordering::SeqCst),
            clients,
        }
    }

    fn status_line(&self) -> String {
        let stats = self.stats();
        let mut line = format!(
            "sympl-wire service: {} client(s) active, {} refused",
            stats.active_clients, stats.refused_clients
        );
        for c in &stats.clients {
            let state = if c.active { "" } else { " gone" };
            line.push_str(&format!(
                " | {}[prio {}]{state}: {} queued, {} done",
                c.label, c.priority, c.queued, c.completed
            ));
        }
        line.push_str(&format!(" | fairness {:.2}", stats.fairness_ratio()));
        line
    }

    /// Reserves a session slot, refusing at the `max_clients` gate (or
    /// while draining). The reservation is what `sessions` counts, so the
    /// gate can never over-admit in a connect race.
    fn try_admit(&self) -> bool {
        if self.draining.load(Ordering::SeqCst) {
            return false;
        }
        let max = self.opts.max_clients.max(1);
        self.sessions
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < max).then_some(n + 1)
            })
            .is_ok()
    }

    /// The executor thread: drains the per-client queues through the
    /// [`FairScheduler`], one task at a time, until stopped.
    fn executor(&self) {
        loop {
            match self.claim_next() {
                Some((slot, job, work)) => self.run_job(&slot, &job, *work),
                None => {
                    if self.stopped.load(Ordering::SeqCst) {
                        return;
                    }
                    let guard = lock_recovering(&self.sched);
                    // Bounded wait so a missed notify can only delay, not
                    // deadlock, the executor.
                    drop(
                        self.sched_cv
                            .wait_timeout(guard, Duration::from_millis(50))
                            .unwrap_or_else(std::sync::PoisonError::into_inner),
                    );
                }
            }
        }
    }

    /// Picks and claims the next runnable job, skipping jobs a cancel
    /// completed while they sat in queue.
    fn claim_next(&self) -> Option<(Arc<ClientSlot>, Arc<SessionJob>, Box<QueuedWork>)> {
        loop {
            let slots: Vec<Arc<ClientSlot>> = lock_recovering(&self.clients).clone();
            let picked = {
                let mut sched = lock_recovering(&self.sched);
                let views: Vec<(u64, bool)> = slots
                    .iter()
                    .map(|s| (s.priority, !lock_recovering(&s.queue).is_empty()))
                    .collect();
                sched.pick(&views)?
            };
            // The pick and the pop race session-side cancels; an emptied
            // queue just sends us around again.
            let Some(job) = lock_recovering(&slots[picked].queue).pop_front() else {
                continue;
            };
            let mut state = lock_recovering(&job.state);
            match std::mem::replace(&mut *state, JobState::Running) {
                JobState::Queued(work) => {
                    drop(state);
                    return Some((Arc::clone(&slots[picked]), Arc::clone(&job), work));
                }
                other => *state = other,
            }
        }
    }

    /// Runs one claimed task through the same engine path a
    /// single-tenant worker uses, parking the reply for the session
    /// thread to flush in order.
    fn run_job(&self, slot: &ClientSlot, job: &SessionJob, work: QueuedWork) {
        let QueuedWork {
            program,
            detectors,
            task,
        } = work;
        let config = ClusterConfig {
            workers: 1,
            tasks: 1,
            search: task.search.clone(),
            task_budget: task.task_budget,
            max_findings_per_task: task.max_findings,
            point_workers_hint: Some(task.point_workers.max(1)),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_task_spec_with_cancel(
                &program,
                &detectors,
                &task.input,
                &task.spec,
                &task.predicate,
                &config,
                &job.cancel,
                None,
            )
        }));
        let reply = match outcome {
            Err(_) => Message::Error(
                "task panicked on the worker; the campaign can re-queue it elsewhere".into(),
            ),
            Ok((result, findings)) => {
                if job.cancelled_by_client.load(Ordering::SeqCst) && !result.completed {
                    Message::Error("task cancelled by the coordinator".into())
                } else {
                    Message::TaskDone { result, findings }
                }
            }
        };
        if matches!(reply, Message::TaskDone { .. }) {
            slot.completed.fetch_add(1, Ordering::SeqCst);
        }
        *lock_recovering(&job.state) = JobState::Done(Box::new(reply));
    }

    /// The status thread: prints [`Self::status_line`] every `interval`
    /// until the service stops.
    fn status_loop(&self, interval: Duration) {
        let interval = interval.max(Duration::from_millis(50));
        let mut last = Instant::now();
        while !self.stopped.load(Ordering::SeqCst) {
            std::thread::sleep(IDLE_POLL.min(interval));
            if last.elapsed() >= interval {
                eprintln!("{}", self.status_line());
                last = Instant::now();
            }
        }
    }

    /// One accepted connection, end to end. The session reservation is
    /// already held (see [`Self::try_admit`]) and is released here.
    fn session(&self, stream: TcpStream, peer: SocketAddr) -> Result<(), WireError> {
        let result = self.admitted_session(stream, peer);
        self.sessions.fetch_sub(1, Ordering::SeqCst);
        result
    }

    fn admitted_session(&self, stream: TcpStream, peer: SocketAddr) -> Result<(), WireError> {
        let mut conn = Conn::establish(stream)?;
        // The hello exchange: the first frame must be a ClientHello. A
        // bare Shutdown is honoured as a drain request — the one-frame
        // conversation fleet teardown scripts use.
        conn.set_read_timeout(Some(Duration::from_secs(10)))?;
        let (label, priority) = match conn.recv()? {
            Message::ClientHello { client, priority } => (client, priority.max(1)),
            Message::Shutdown => {
                self.draining.store(true, Ordering::SeqCst);
                return Ok(());
            }
            _ => {
                let _ = conn.send(&Message::Error(
                    "expected a ClientHello as the first frame".into(),
                ));
                return Err(WireError::UnexpectedMessage("client hello"));
            }
        };
        let slot = {
            let slot = Arc::new(ClientSlot {
                id: self.next_client_id.fetch_add(1, Ordering::SeqCst),
                label,
                priority,
                queue: Mutex::new(VecDeque::new()),
                completed: AtomicUsize::new(0),
                active: AtomicBool::new(true),
            });
            lock_recovering(&self.clients).push(Arc::clone(&slot));
            slot
        };
        conn.send(&Message::ClientAccept { client_id: slot.id })?;
        eprintln!(
            "sympl-wire service: client #{} `{}` (priority {}) connected from {peer}",
            slot.id, slot.label, slot.priority
        );
        let served = self.serve_session(&mut conn, &slot);
        // Teardown: whatever the client left behind is cancelled and
        // unqueued so the executor never burns time for a gone session.
        for job in lock_recovering(&slot.queue).drain(..) {
            job.cancel.store(true, Ordering::SeqCst);
            let mut state = lock_recovering(&job.state);
            if matches!(*state, JobState::Queued(_)) {
                *state = JobState::Sent;
            }
        }
        slot.active.store(false, Ordering::SeqCst);
        eprintln!(
            "sympl-wire service: client #{} `{}` disconnected ({} task(s) completed)",
            slot.id,
            slot.label,
            slot.completed.load(Ordering::SeqCst)
        );
        served
    }

    /// The admitted session's frame loop: accept tasks (pipelining is
    /// allowed), flush replies in submission order, heartbeat while work
    /// is in flight, honour `Cancel`, end on `Shutdown` or hang-up.
    fn serve_session(&self, conn: &mut Conn, slot: &ClientSlot) -> Result<(), WireError> {
        let mut pending: VecDeque<Arc<SessionJob>> = VecDeque::new();
        let mut last_beat = Instant::now();
        loop {
            // Flush: replies go out strictly in submission order, so a
            // coordinator driving one task at a time sees exactly the
            // single-tenant conversation.
            while let Some(front) = pending.front() {
                let reply = {
                    let mut state = lock_recovering(&front.state);
                    match std::mem::replace(&mut *state, JobState::Sent) {
                        JobState::Done(reply) => Some(*reply),
                        other => {
                            *state = other;
                            None
                        }
                    }
                };
                let Some(reply) = reply else { break };
                conn.send(&reply)?;
                pending.pop_front();
                last_beat = Instant::now();
            }
            let (wait, in_flight) = if pending.is_empty() {
                (Duration::from_millis(100), false)
            } else {
                // Work in flight: keep the client's liveness deadline
                // armed at the tightest cadence it asked for, whether its
                // task is running or waiting its scheduling turn.
                let interval = pending
                    .iter()
                    .map(|j| j.interval)
                    .min()
                    .unwrap_or(MIN_HEARTBEAT_INTERVAL)
                    .max(MIN_HEARTBEAT_INTERVAL);
                if last_beat.elapsed() >= interval {
                    conn.send(&Message::Heartbeat)?;
                    last_beat = Instant::now();
                }
                (interval / 4, true)
            };
            let message = match conn.poll_recv(wait, Duration::from_secs(5)) {
                Ok(Some(message)) => message,
                Ok(None) => {
                    if !in_flight && self.stopped.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    continue;
                }
                Err(WireError::Disconnected) => return Ok(()),
                Err(e) => return Err(e),
            };
            match message {
                Message::Task(task) => {
                    let job = self.enqueue(slot, task);
                    pending.push_back(job);
                }
                Message::Cancel => {
                    // Cancel the oldest incomplete job: queued jobs are
                    // answered (and unscheduled) immediately, a running
                    // one is asked to stop at the next point boundary.
                    if let Some(job) = pending.iter().find(|j| j.is_incomplete()) {
                        job.cancelled_by_client.store(true, Ordering::SeqCst);
                        job.cancel.store(true, Ordering::SeqCst);
                        let mut state = lock_recovering(&job.state);
                        if matches!(*state, JobState::Queued(_)) {
                            *state = JobState::Done(Box::new(Message::Error(
                                "task cancelled by the coordinator".into(),
                            )));
                        }
                    }
                }
                Message::Shutdown => {
                    self.draining.store(true, Ordering::SeqCst);
                    return Ok(());
                }
                Message::Heartbeat
                | Message::TaskDone { .. }
                | Message::Error(_)
                | Message::Register { .. }
                | Message::Welcome { .. }
                | Message::ClientHello { .. }
                | Message::ClientAccept { .. } => {
                    return Err(WireError::UnexpectedMessage("task or control frame"))
                }
            }
        }
    }

    /// Resolves and queues one task for the executor. Resolution and
    /// digest failures produce a pre-completed job (the typed `Error`
    /// reply) that never reaches the scheduler, preserving reply order.
    fn enqueue(&self, slot: &ClientSlot, task: TaskFrame) -> Arc<SessionJob> {
        let interval = task.heartbeat_interval.max(MIN_HEARTBEAT_INTERVAL);
        let state = match (self.resolve)(&task.program_id) {
            None => JobState::Done(Box::new(Message::Error(format!(
                "unknown program id `{}`",
                task.program_id
            )))),
            Some((program, detectors)) => {
                // Decode once per task frame, exactly like the
                // single-tenant path.
                let _ = program.decoded();
                if program_digest(&program) == task.program_digest {
                    JobState::Queued(Box::new(QueuedWork {
                        program,
                        detectors,
                        task,
                    }))
                } else {
                    JobState::Done(Box::new(Message::Error(format!(
                        "program digest mismatch for `{}`: this worker has a different revision",
                        task.program_id
                    ))))
                }
            }
        };
        let runnable = matches!(state, JobState::Queued(_));
        let job = Arc::new(SessionJob {
            interval,
            cancel: AtomicBool::new(false),
            cancelled_by_client: AtomicBool::new(false),
            state: Mutex::new(state),
        });
        if runnable {
            lock_recovering(&slot.queue).push_back(Arc::clone(&job));
            drop(lock_recovering(&self.sched));
            self.sched_cv.notify_all();
        }
        job
    }
}

impl WorkerServer {
    /// Serves many concurrent coordinators — the multi-tenant campaign
    /// service. Each accepted connection runs as its own session thread;
    /// tasks from all sessions drain through one [`FairScheduler`]-driven
    /// executor. Returns the final [`ServiceStats`] once a client sends
    /// `Shutdown` and the last session closes.
    ///
    /// # Errors
    ///
    /// Only listener-level failures; per-connection errors are reported
    /// to stderr and the service keeps accepting.
    pub fn serve_with(
        &self,
        resolve: &ProgramResolver<'_>,
        opts: &ServeOptions,
    ) -> Result<ServiceStats, WireError> {
        let service = Service::new(resolve, opts.clone());
        self.listener.set_nonblocking(true).map_err(WireError::Io)?;
        let result = std::thread::scope(|scope| {
            let service = &service;
            scope.spawn(move || service.executor());
            if let Some(interval) = service.opts.status_interval {
                scope.spawn(move || service.status_loop(interval));
            }
            let accepted = loop {
                match self.listener.accept() {
                    Ok((stream, peer)) => {
                        // The listener is non-blocking; the accepted
                        // socket must not inherit that.
                        if let Err(e) = stream.set_nonblocking(false) {
                            eprintln!("sympl-wire service: cannot configure {peer}: {e}");
                            continue;
                        }
                        if service.try_admit() {
                            scope.spawn(move || {
                                if let Err(e) = service.session(stream, peer) {
                                    eprintln!(
                                        "sympl-wire service: connection from {peer} failed: {e}"
                                    );
                                }
                            });
                        } else {
                            // The accept gate: refuse loudly with a typed
                            // Error frame instead of hanging the client.
                            let max = service.opts.max_clients.max(1);
                            service.refused.fetch_add(1, Ordering::SeqCst);
                            eprintln!(
                                "sympl-wire service: refusing client from {peer}: \
                                 at capacity ({max}/{max} clients)"
                            );
                            scope.spawn(move || {
                                if let Ok(mut conn) = Conn::establish(stream) {
                                    let _ = conn.send(&Message::Error(format!(
                                        "service at capacity ({max}/{max} clients); \
                                         try again later"
                                    )));
                                }
                            });
                        }
                    }
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if service.draining.load(Ordering::SeqCst)
                            && service.sessions.load(Ordering::SeqCst) == 0
                        {
                            break Ok(());
                        }
                        std::thread::sleep(IDLE_POLL);
                    }
                    Err(e) => break Err(WireError::Io(e)),
                }
            };
            service.stopped.store(true, Ordering::SeqCst);
            accepted
        });
        let _ = self.listener.set_nonblocking(false);
        result.map(|()| service.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{
        run_distributed, run_distributed_with, CampaignJob, DistOptions, LISTENING_PREFIX,
    };
    use sympl_asm::parse_program;
    use sympl_check::{Predicate, SearchLimits};
    use sympl_cluster::run_cluster;
    use sympl_inject::{Campaign, ErrorClass};
    use sympl_machine::ExecLimits;

    fn factorial() -> Program {
        parse_program(
            "ori $2 $0 #1\nread $1\nmov $3, $1\nori $4 $0 #1\n\
             loop: setgt $5 $3 $4\nbeq $5 0 exit\nmult $2 $2 $3\nsubi $3 $3 #1\nbeq $0 #0 loop\n\
             exit: prints \"Factorial = \"\nprint $2\nhalt",
        )
        .unwrap()
    }

    /// A program whose per-point searches take tens of milliseconds under
    /// a generous step budget, so scheduling order — not thread-wakeup
    /// noise — decides which client's replies land first.
    fn slow_program() -> Program {
        parse_program(
            "read $1\nmov $4 $1\nouter: ori $2 $0 #0\n\
             inner: addi $2 $2 #1\nsetgt $3 $2 $1\nbeq $3 0 inner\n\
             subi $4 $4 #1\nsetgt $5 $4 #0\nbeq $5 1 outer\n\
             prints \"done\"\nhalt",
        )
        .unwrap()
    }

    fn resolver(id: &str) -> Option<(Program, DetectorSet)> {
        match id {
            "factorial" => Some((factorial(), DetectorSet::new())),
            "slowprog" => Some((slow_program(), DetectorSet::new())),
            _ => None,
        }
    }

    fn deterministic_config(tasks: usize) -> ClusterConfig {
        ClusterConfig {
            workers: 1,
            tasks,
            search: SearchLimits {
                exec: ExecLimits::with_max_steps(300),
                max_solutions: 4,
                ..SearchLimits::default()
            },
            task_budget: None,
            max_findings_per_task: 4,
            point_workers_hint: Some(1),
        }
    }

    fn start_service(
        opts: ServeOptions,
    ) -> (
        String,
        std::thread::JoinHandle<Result<ServiceStats, WireError>>,
    ) {
        let server = WorkerServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.serve_with(&resolver, &opts));
        (addr, handle)
    }

    fn campaign_job<'a>(
        program: &'a Program,
        input: &'a [i64],
        campaign: &'a Campaign,
        predicate: &'a Predicate,
        config: &'a ClusterConfig,
    ) -> CampaignJob<'a> {
        CampaignJob {
            program,
            program_id: "factorial",
            input,
            campaign,
            predicate,
            config,
        }
    }

    #[test]
    fn scheduler_alternates_equal_priority_backlogged_clients() {
        let mut sched = FairScheduler::new();
        let clients = [(1, true), (1, true)];
        let picks: Vec<usize> = (0..10).map(|_| sched.pick(&clients).unwrap()).collect();
        // Strict alternation: neither client is ever served twice in a row.
        for pair in picks.windows(2) {
            assert_ne!(pair[0], pair[1], "picks {picks:?}");
        }
        assert_eq!(picks.iter().filter(|&&j| j == 0).count(), 5);
    }

    #[test]
    fn scheduler_weights_by_priority() {
        let mut sched = FairScheduler::new();
        // Client 0 at priority 3, client 1 at priority 1, both backlogged.
        let clients = [(3, true), (1, true)];
        let picks: Vec<usize> = (0..40).map(|_| sched.pick(&clients).unwrap()).collect();
        let zeros = picks.iter().filter(|&&j| j == 0).count();
        assert_eq!(
            zeros, 30,
            "3:1 weighting over whole rounds; picks {picks:?}"
        );
    }

    #[test]
    fn scheduler_skips_idle_clients_and_serves_late_backlog_next_round() {
        let mut sched = FairScheduler::new();
        // Only client 0 is backlogged: it is served without rationing.
        for _ in 0..5 {
            assert_eq!(sched.pick(&[(1, true), (1, false)]), Some(0));
        }
        // Nobody backlogged: no pick.
        assert_eq!(sched.pick(&[(1, false), (1, false)]), None);
        // Client 1 arrives (a list that also just grew by one): it is
        // served promptly even though client 0 kept its backlog.
        let picks: Vec<usize> = (0..4)
            .map(|_| sched.pick(&[(1, true), (1, true), (1, false)]).unwrap())
            .collect();
        assert!(picks.contains(&1), "late client starves: {picks:?}");
        for pair in picks.windows(2) {
            assert_ne!(pair[0], pair[1], "picks {picks:?}");
        }
    }

    #[test]
    fn fairness_ratio_is_per_unit_priority() {
        let stats = ServiceStats {
            active_clients: 2,
            refused_clients: 0,
            clients: vec![
                ClientStats {
                    client_id: 1,
                    label: "a".into(),
                    priority: 2,
                    active: true,
                    queued: 0,
                    completed: 20,
                },
                ClientStats {
                    client_id: 2,
                    label: "b".into(),
                    priority: 1,
                    active: true,
                    queued: 0,
                    completed: 11,
                },
            ],
        };
        let ratio = stats.fairness_ratio();
        assert!((ratio - 1.1).abs() < 1e-9, "ratio {ratio}");
        assert!(
            (ServiceStats::default().fairness_ratio() - 1.0).abs() < f64::EPSILON,
            "no clients means nothing to be unfair about"
        );
    }

    #[test]
    fn full_service_refuses_clients_with_a_typed_error() {
        let (addr, handle) = start_service(ServeOptions {
            max_clients: 1,
            status_interval: None,
        });
        // First client occupies the only slot.
        let stream = TcpStream::connect(&addr).unwrap();
        let mut first = Conn::establish(stream).unwrap();
        first
            .send(&Message::ClientHello {
                client: "occupant".into(),
                priority: 1,
            })
            .unwrap();
        first
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        assert!(matches!(
            first.recv().unwrap(),
            Message::ClientAccept { .. }
        ));
        // Second client is refused with a typed Error frame — not
        // silently dropped, not hung.
        let stream = TcpStream::connect(&addr).unwrap();
        let mut second = Conn::establish(stream).unwrap();
        second
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        match second.recv().unwrap() {
            Message::Error(msg) => assert!(msg.contains("capacity"), "got `{msg}`"),
            other => panic!("expected a typed Error refusal, got {other:?}"),
        }
        drop(second);
        // The occupant shuts the service down cleanly.
        first.send(&Message::Shutdown).unwrap();
        drop(first);
        let stats = handle.join().unwrap().unwrap();
        assert_eq!(stats.refused_clients, 1);
    }

    #[test]
    fn two_concurrent_campaigns_reproduce_their_in_process_digests() {
        let program = factorial();
        let input = vec![5];
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::WrongOutput {
            expected: vec![120],
        };
        let config_a = deterministic_config(4);
        let config_b = deterministic_config(2);
        let expected_a = run_cluster(
            &program,
            &DetectorSet::new(),
            &input,
            &campaign,
            &predicate,
            &config_a,
        )
        .outcome_digest();
        let expected_b = run_cluster(
            &program,
            &DetectorSet::new(),
            &input,
            &campaign,
            &predicate,
            &config_b,
        )
        .outcome_digest();

        let (addr, handle) = start_service(ServeOptions::default());
        let digests = std::thread::scope(|scope| {
            let a = scope.spawn(|| {
                let job = campaign_job(&program, &input, &campaign, &predicate, &config_a);
                run_distributed_with(
                    &job,
                    std::slice::from_ref(&addr),
                    &DistOptions {
                        client_label: Some("campaign-a".into()),
                        ..DistOptions::default()
                    },
                )
                .unwrap()
                .outcome_digest()
            });
            let b = scope.spawn(|| {
                let job = campaign_job(&program, &input, &campaign, &predicate, &config_b);
                run_distributed_with(
                    &job,
                    std::slice::from_ref(&addr),
                    &DistOptions {
                        client_label: Some("campaign-b".into()),
                        client_priority: 2,
                        ..DistOptions::default()
                    },
                )
                .unwrap()
                .outcome_digest()
            });
            (a.join().unwrap(), b.join().unwrap())
        });
        assert_eq!(digests.0, expected_a, "tenant A's digest moved");
        assert_eq!(digests.1, expected_b, "tenant B's digest moved");

        // Tear the service down and check its books.
        let stream = TcpStream::connect(&addr).unwrap();
        let mut conn = Conn::establish(stream).unwrap();
        conn.send(&Message::Shutdown).unwrap();
        drop(conn);
        let stats = handle.join().unwrap().unwrap();
        assert_eq!(stats.refused_clients, 0);
        let by_label = |label: &str| {
            stats
                .clients
                .iter()
                .find(|c| c.label == label)
                .unwrap_or_else(|| panic!("no stats row for {label}"))
                .clone()
        };
        assert_eq!(by_label("campaign-a").completed, 4);
        assert_eq!(by_label("campaign-a").priority, 1);
        assert_eq!(by_label("campaign-b").completed, 2);
        assert_eq!(by_label("campaign-b").priority, 2);
    }

    #[test]
    fn small_campaign_completes_while_a_large_one_is_in_flight() {
        // Starvation regression: a 16-task campaign and a 2-task campaign
        // share one single-executor service; round-robin means the small
        // one must finish long before the big one's tail.
        let program = factorial();
        let input = vec![6];
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::WrongOutput {
            expected: vec![720],
        };
        let big_config = deterministic_config(16);
        let small_config = deterministic_config(2);

        let (addr, handle) = start_service(ServeOptions::default());
        let (big_done, small_done) = std::thread::scope(|scope| {
            let big = scope.spawn(|| {
                let job = campaign_job(&program, &input, &campaign, &predicate, &big_config);
                let report = run_distributed_with(
                    &job,
                    std::slice::from_ref(&addr),
                    &DistOptions {
                        client_label: Some("big".into()),
                        ..DistOptions::default()
                    },
                )
                .unwrap();
                (Instant::now(), report.outcome_digest())
            });
            let small = scope.spawn(|| {
                let job = campaign_job(&program, &input, &campaign, &predicate, &small_config);
                let report = run_distributed_with(
                    &job,
                    std::slice::from_ref(&addr),
                    &DistOptions {
                        client_label: Some("small".into()),
                        ..DistOptions::default()
                    },
                )
                .unwrap();
                (Instant::now(), report.outcome_digest())
            });
            (big.join().unwrap(), small.join().unwrap())
        });
        assert_eq!(
            big_done.1,
            run_cluster(
                &program,
                &DetectorSet::new(),
                &input,
                &campaign,
                &predicate,
                &big_config,
            )
            .outcome_digest()
        );
        assert_eq!(
            small_done.1,
            run_cluster(
                &program,
                &DetectorSet::new(),
                &input,
                &campaign,
                &predicate,
                &small_config,
            )
            .outcome_digest()
        );
        // The starvation assertion proper: the small campaign must not
        // have waited for the big one's completion.
        assert!(
            small_done.0 <= big_done.0,
            "the small campaign finished after the big one — it starved"
        );

        let stream = TcpStream::connect(&addr).unwrap();
        let mut conn = Conn::establish(stream).unwrap();
        conn.send(&Message::Shutdown).unwrap();
        drop(conn);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn pipelined_clients_interleave_within_the_fairness_bound() {
        // Drive two sessions by hand, pipelining unequal task counts at
        // equal priority. While both are backlogged the scheduler
        // alternates (the sharp per-round bound is pinned by the
        // FairScheduler unit and property tests), so the short client's
        // last reply must land no later than the long client's — and
        // every pipelined task must be answered. The slow program keeps
        // each task in flight for tens of milliseconds, so the finish
        // order reflects the schedule rather than thread-wakeup noise.
        let program = slow_program();
        let digest = program_digest(&program);
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let shards = sympl_cluster::shard_specs(&campaign, 8);
        let task_for = |spec: &sympl_cluster::TaskSpec| TaskFrame {
            program_id: "slowprog".into(),
            program_digest: digest,
            input: vec![12],
            spec: spec.clone(),
            predicate: Predicate::OutputContainsErr,
            search: SearchLimits {
                exec: ExecLimits::with_max_steps(2_000),
                max_solutions: 4,
                ..SearchLimits::default()
            },
            task_budget: None,
            max_findings: 4,
            point_workers: 1,
            heartbeat_interval: Duration::from_millis(100),
        };

        let (addr, handle) = start_service(ServeOptions::default());
        let connect = |label: &str| {
            let stream = TcpStream::connect(&addr).unwrap();
            let mut conn = Conn::establish(stream).unwrap();
            conn.send(&Message::ClientHello {
                client: label.into(),
                priority: 1,
            })
            .unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            assert!(matches!(conn.recv().unwrap(), Message::ClientAccept { .. }));
            conn
        };
        let mut long = connect("long");
        let mut short = connect("short");
        // Pipeline 6 tasks on the long client, then 2 on the short one.
        for spec in &shards[..6] {
            long.send(&Message::Task(task_for(spec))).unwrap();
        }
        for spec in &shards[6..8] {
            short.send(&Message::Task(task_for(spec))).unwrap();
        }
        let drain = |conn: &mut Conn, n: usize| {
            let mut done = 0usize;
            while done < n {
                match conn.recv().unwrap() {
                    Message::TaskDone { .. } => done += 1,
                    Message::Heartbeat => {}
                    other => panic!("unexpected frame {other:?}"),
                }
            }
            Instant::now()
        };
        // Drain both sessions concurrently and compare finish instants:
        // under round-robin the short client's 2 tasks complete inside
        // the long client's first rounds, so it must finish first. (A
        // client-FIFO scheduler would hold the short client's replies
        // behind all 6 long tasks — exactly the starvation this pins.)
        let (short_done, long_done) = std::thread::scope(|scope| {
            let l = scope.spawn(|| drain(&mut long, 6));
            let s = scope.spawn(|| drain(&mut short, 2));
            (s.join().unwrap(), l.join().unwrap())
        });
        assert!(
            short_done <= long_done,
            "the short client observed no interleaving — it starved behind the long one"
        );
        long.send(&Message::Shutdown).unwrap();
        drop(long);
        drop(short);
        let stats = handle.join().unwrap().unwrap();
        let completed: usize = stats.clients.iter().map(|c| c.completed).sum();
        assert_eq!(completed, 8, "every pipelined task was answered");
        assert!(
            stats.fairness_ratio() <= 3.0 + f64::EPSILON,
            "fairness ratio {:.2} way out of bounds: {stats:?}",
            stats.fairness_ratio()
        );
    }

    #[test]
    fn serve_loopback_workers_are_multiplexed() {
        // The classic single-campaign path through the new serve loop:
        // run_distributed with shutdown still completes and tears the
        // daemon down — the compatibility contract for every existing
        // demo and test that spawns `symplfied serve`.
        let program = factorial();
        let input = vec![4];
        let campaign = Campaign::new(&program, ErrorClass::RegisterFile);
        let predicate = Predicate::WrongOutput { expected: vec![24] };
        let config = deterministic_config(3);
        let expected = run_cluster(
            &program,
            &DetectorSet::new(),
            &input,
            &campaign,
            &predicate,
            &config,
        )
        .outcome_digest();
        let server = WorkerServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.serve(&resolver));
        let job = campaign_job(&program, &input, &campaign, &predicate, &config);
        let report = run_distributed(&job, &[addr], true).unwrap();
        assert_eq!(report.outcome_digest(), expected);
        handle.join().unwrap().unwrap();
        // LISTENING_PREFIX is untouched by the service rework — the
        // spawn helpers' readiness contract.
        assert!(LISTENING_PREFIX.contains("listening"));
    }
}
