# Developer entry points for the SymPLFIED reproduction.
#
# `just build` / `just test` mirror the tier-1 gate; `just repro-tables`
# regenerates every paper table/figure in one command.

# Build the whole workspace in release mode.
build:
    cargo build --release --workspace

# Run the full test suite (unit + integration + property tests).
test:
    cargo test -q --workspace

# Lint gate: formatting and clippy, as CI runs them.
lint:
    cargo fmt --all --check
    cargo clippy --workspace --all-targets -- -D warnings

# Run the Criterion-style benches (engine + campaign throughput).
bench:
    cargo bench --workspace

# Write BENCH_explore.json: sequential-vs-parallel engine throughput on the
# factorial/tcas/replace register full-sweeps at fixed budgets.
bench-json:
    cargo run --release -p sympl-bench --bin bench_json

# Loopback distributed-campaign demo: a coordinator plus N self-spawned
# worker processes on 127.0.0.1 run the quick tcas campaign over the
# sympl_wire TCP protocol, then gate on the distributed report reproducing
# the in-process cluster's outcome digest verbatim. The CI
# distributed-campaign job runs exactly this recipe.
cluster-demo workers="2":
    cargo run --release -p sympl-bench --bin tcas_campaign -- --quick --tasks 16 --spawn-workers {{workers}} --verify-local

# Chaos demo: the fault-tolerance acceptance legs the distributed-campaign
# CI job gates on. Leg 1 SIGKILLs one of three loopback workers after the
# first result and still requires the in-process outcome digest verbatim.
# Leg 2 runs a checkpointing coordinator that aborts mid-campaign (a
# deterministic coordinator crash), and leg 3 resumes from its checkpoint
# — re-running only the missing shards — and again gates on the
# in-process digest.
chaos-demo:
    cargo run --release -p sympl-bench --bin tcas_campaign -- --quick --tasks 16 --spawn-workers 3 --chaos-kill-one --verify-local
    cargo run --release -p sympl-bench --bin tcas_campaign -- --quick --tasks 16 --spawn-workers 2 --checkpoint target/chaos-demo.checkpoint --chaos-abort-after 5
    cargo run --release -p sympl-bench --bin tcas_campaign -- --quick --tasks 16 --spawn-workers 2 --resume target/chaos-demo.checkpoint --verify-local

# Elastic demo: the dynamic-membership acceptance legs the
# distributed-campaign CI job gates on, run on the slow `spin` workload
# (the paper workloads finish too fast for membership events to land
# mid-campaign). Leg 1 runs one coordinator with everything at once —
# SIGKILL one of two loopback workers after the first result, admit two
# late joiners through the join listener (--expect-join exits 2 if none
# arrived in time), force at least one wire-level shard split
# (--expect-split exits 2 if none happened) — and still requires the
# in-process outcome digest verbatim. Legs 2 and 3 prove the checkpoint
# is fleet-blind: a three-worker fleet checkpoints and aborts, then an
# entirely different two-worker fleet resumes it to the same gated
# digest.
elastic-demo:
    cargo run --release -p sympl-bench --bin elastic_campaign -- --tasks 3 --spawn-workers 2 --chaos-kill-one --join-late 2 --split-idle --expect-split --expect-join --heartbeat-interval 30 --verify-local
    cargo run --release -p sympl-bench --bin elastic_campaign -- --tasks 6 --spawn-workers 3 --checkpoint target/elastic-demo.checkpoint --chaos-abort-after 2
    cargo run --release -p sympl-bench --bin elastic_campaign -- --tasks 6 --spawn-workers 2 --resume target/elastic-demo.checkpoint --verify-local

# Memo demo: the cross-campaign memoization acceptance legs the
# distributed-campaign CI job gates on. Leg 1 runs the quick tcas
# campaign cold against a fresh store. Leg 2 reruns it against the saved
# store and gates (--expect-memo-warm exits 2 otherwise) on the run being
# served warm: memo hits present, ≥ 50% of states skipped, and an
# outcome digest identical to an in-process memo-off run. Leg 3 appends a
# dead instruction to tcas (--mutate-program) and gates on the now-stale
# store being *refused* at load (--expect-stale-memo) — the
# incremental-recheck contract: one program edit invalidates the store.
memo-demo:
    rm -f target/memo-demo.symo
    cargo run --release -p sympl-bench --bin tcas_campaign -- --quick --tasks 16 --memo-path target/memo-demo.symo
    cargo run --release -p sympl-bench --bin tcas_campaign -- --quick --tasks 16 --memo-path target/memo-demo.symo --expect-memo-warm
    cargo run --release -p sympl-bench --bin tcas_campaign -- --quick --tasks 16 --memo-path target/memo-demo.symo --mutate-program --expect-stale-memo

# Service demo: the multi-tenant acceptance leg the distributed-campaign
# CI job gates on. One shared fleet of multiplexed loopback workers
# serves TWO campaigns (tcas + replace) run concurrently by separate
# coordinators with distinct client labels and priorities; each campaign
# gates (exit 2) on its distributed outcome digest reproducing its own
# in-process run verbatim — the determinism contract is tenant-blind.
service-demo workers="2":
    cargo run --release -p sympl-bench --bin service_demo -- --workers {{workers}}

# Regenerate the paper's tables and figures from the assembled workloads.
repro-tables:
    cargo run --release -p sympl-bench --bin table1
    cargo run --release -p sympl-bench --bin table2 -- --quick
    cargo run --release -p sympl-bench --bin table3
    cargo run --release -p sympl-bench --bin fig2_fig3
    cargo run --release -p sympl-bench --bin tcas_campaign -- --quick --tasks 16
    cargo run --release -p sympl-bench --bin replace_campaign -- --quick --tasks 16
