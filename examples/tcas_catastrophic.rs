//! The paper's headline case study (§6.2): find the transient error that
//! converts tcas's upward advisory (1) into a downward advisory (2), show
//! its witness trace, and confirm it by concrete replay — then show that
//! thousands of concrete random/extreme injections never find it.
//!
//! Run with `cargo run --release --example tcas_catastrophic`.

use symplfied::check::SearchLimits;
use symplfied::inject::{run_point, InjectTarget, InjectionPoint};
use symplfied::machine::ExecLimits;
use symplfied::prelude::*;
use symplfied::ssim;

fn main() {
    let w = symplfied::apps::tcas();
    let golden = symplfied::apps::golden(&w);
    println!(
        "tcas: {} instructions; golden advisory: {:?}",
        w.program.len(),
        golden.output_ints()
    );

    // The injection the paper reports: the return-address register $31 at
    // the return of Non_Crossing_Biased_Climb.
    let jr = w.program.label_address("ncbc_done").unwrap() + 2;
    let point = InjectionPoint::new(jr, InjectTarget::Register(Reg::r(31)));
    let limits = SearchLimits {
        exec: ExecLimits::with_max_steps(w.max_steps),
        max_states: 2_000_000,
        max_solutions: 5,
        max_time: None,
        ..SearchLimits::default()
    };
    let outcome = run_point(
        &w.program,
        &w.detectors,
        &w.input,
        &point,
        &Predicate::ExactOutput { output: vec![2] },
        &limits,
    );
    println!(
        "\nsymbolic search at `{}` ({}):",
        w.program.fetch(jr).unwrap(),
        point
    );
    println!(
        "  {} states explored, {} catastrophic witness(es)",
        outcome.report.states_explored,
        outcome.report.solutions.len()
    );

    let downward = w.program.label_address("ast_downward").unwrap();
    for sol in &outcome.report.solutions {
        let via = if sol.trace.contains(&downward) {
            " (lands on the alt_sep = DOWNWARD_RA assignment — Figure 4)"
        } else {
            ""
        };
        println!("  witness trace: {}{}", sol.trace_summary(14), via);
    }

    // Concrete replay (the paper validated against SimpleScalar).
    let replay = ssim::replay_register_witness(
        &w.program,
        &w.detectors,
        &w.input,
        jr,
        1,
        Reg::r(31),
        downward as i64,
        &ExecLimits::with_max_steps(w.max_steps),
    )
    .expect("breakpoint on golden path");
    println!(
        "\nconcrete replay with $31 := {downward}: {} — the finding is real",
        replay.outcome
    );

    // The baseline: extreme+random concrete injection (Table 2).
    let report = ssim::run_campaign(
        &w.program,
        &w.detectors,
        &w.input,
        &ssim::CampaignConfig::default(),
        &ExecLimits::with_max_steps(w.max_steps),
    );
    println!(
        "\nconcrete campaign: {} runs, saw advisory 2: {} (paper: never, even at 41k runs)",
        report.total_runs(),
        report.saw_output(&[2])
    );
}
