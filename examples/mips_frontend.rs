//! The MIPS front-end (paper §5 "Supporting Tools"): translate a MIPS
//! routine into SymPLFIED assembly and analyze it unchanged.
//!
//! Run with `cargo run --example mips_frontend`.

use symplfied::asm::mips::translate_mips;
use symplfied::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A MIPS routine: read n, compute the sum 1..n with a loop, print it.
    let mips_source = r"
    main:
        li   $v0, 5          # syscall: read integer
        syscall
        move $t0, $v0        # n
        li   $t1, 0          # sum
        li   $t2, 1          # i
    loop:
        slt  $t3, $t0, $t2   # n < i ?
        bnez $t3, done
        addu $t1, $t1, $t2
        addiu $t2, $t2, 1
        j    loop
    done:
        move $a0, $t1
        li   $v0, 1          # syscall: print integer
        syscall
        li   $v0, 10         # syscall: exit
        syscall
    ";

    let program = translate_mips(mips_source)?;
    println!("translated program:\n{}", program.listing());

    // Run it concretely.
    let mut state = MachineState::with_input(vec![10]);
    run_concrete(
        &mut state,
        &program,
        &DetectorSet::new(),
        &ExecLimits::default(),
    )?;
    println!("concrete run, n=10: output {:?}", state.output_ints());
    assert_eq!(state.output_ints(), vec![55]);

    // And analyze it symbolically, exactly like a native program.
    let framework = Framework::new(program).with_input(vec![10]);
    let verdict = framework.enumerate_undetected(ErrorClass::RegisterFile);
    println!("\nregister-error analysis: {}", verdict.summary());
    Ok(())
}
