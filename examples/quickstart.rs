//! Quickstart: verify a tiny program against register errors.
//!
//! Run with `cargo run --example quickstart`.
//!
//! Writes a small assembly program, asks the framework which single
//! register errors evade detection and silently corrupt the output, then
//! adds a detector and shows how the escaping-error set shrinks.

use symplfied::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program that reads x and prints x*x + 1.
    let program = parse_program(
        r"
        read $1
        mult $2, $1, $1
        addi $3, $2, 1
        print $3
        halt
        ",
    )?;

    let framework = Framework::new(program.clone()).with_input(vec![6]);
    println!("golden output: {:?}", framework.golden_output());

    // 1. No detectors: every register error that reaches the output escapes.
    let verdict = framework.enumerate_undetected(ErrorClass::RegisterFile);
    println!("\nwithout detectors: {}", verdict.summary());
    for f in &verdict.findings {
        println!(
            "  {} -> prints `{}`",
            f.point,
            f.solution.state.rendered_output()
        );
    }

    // 2. Add a detector: $3 must equal $2 + 1 right before the print.
    let program2 = parse_program(
        r"
        read $1
        mult $2, $1, $1
        addi $3, $2, 1
        check 1
        print $3
        halt
        ",
    )?;
    let mut detectors = DetectorSet::new();
    detectors.insert(Detector::parse("det(1, $(3), ==, ($2) + (1))")?);
    let framework2 = Framework::new(program2)
        .with_detectors(detectors)
        .with_input(vec![6]);
    let verdict2 = framework2.enumerate_undetected(ErrorClass::RegisterFile);
    println!("\nwith a detector:   {}", verdict2.summary());
    for f in &verdict2.findings {
        println!(
            "  still escaping: {} -> `{}`",
            f.point,
            f.solution.state.rendered_output()
        );
    }
    println!(
        "\nThe residual findings strike between the check and the print — \
         the detection windows SymPLFIED makes explicit (paper §4.2)."
    );
    Ok(())
}
