//! The paper's §4 walkthrough: the factorial program of Figure 2, the
//! injected loop-counter error, and the Figure-3 detectors.
//!
//! Run with `cargo run --example factorial_detectors`.

use symplfied::check::{search_many, SearchLimits};
use symplfied::inject::{prepare, InjectTarget, InjectionPoint};
use symplfied::machine::ExecLimits;
use symplfied::prelude::*;

fn main() {
    let plain = symplfied::apps::factorial();
    let protected = symplfied::apps::factorial_with_detectors();

    println!("Figure 2 program:\n{}", plain.program.listing());

    // Inject err into $3 just after the first decrement (paper §4.1).
    let limits = SearchLimits {
        exec: ExecLimits::with_max_steps(400),
        max_solutions: 50,
        ..SearchLimits::default()
    };
    for (name, w, subi_addr) in [
        ("Figure 2 (no detectors)", &plain, 7usize),
        ("Figure 3 (with detectors)", &protected, 10usize),
    ] {
        let point = InjectionPoint::new(subi_addr, InjectTarget::Register(Reg::r(3)));
        let prep = prepare(&w.program, &w.detectors, &w.input, &point, &limits.exec);
        let report = search_many(
            &w.program,
            &w.detectors,
            prep.seeds,
            &Predicate::Any,
            &limits,
        );
        println!("--- {name} ---");
        println!(
            "states explored: {}, terminals: {}",
            report.states_explored, report.terminals
        );
        for sol in &report.solutions {
            let constraints = if sol.state.constraints().is_empty() {
                String::new()
            } else {
                format!("   [constraints {}]", sol.state.constraints())
            };
            println!(
                "  {:>28} | output `{}`{}",
                sol.state.status().to_string(),
                sol.state.rendered_output(),
                constraints
            );
        }
        println!();
    }
    println!(
        "The detected branches show *which* errors the Figure-3 detectors \
         catch; the halted-with-wrong-output branches are the errors that \
         evade them — made explicit for the programmer (paper §4.2)."
    );
}
