//! The paper's §6.4 example scenario on `replace`: corrupt the range
//! parameter of `dodash` so an erroneous character class is constructed
//! and the substitution silently does not happen.
//!
//! Run with `cargo run --release --example replace_dodash`.

use std::time::Duration;

use symplfied::apps::replace_input;
use symplfied::check::SearchLimits;
use symplfied::inject::{run_point, InjectTarget, InjectionPoint};
use symplfied::machine::ExecLimits;
use symplfied::prelude::*;

fn main() {
    let w = symplfied::apps::replace();
    let golden = symplfied::apps::golden(&w).output_ints();
    println!(
        "replace: pattern `[a-c]x`, substitution `Z`, line `axbxdx`\n\
         golden output: `{}`",
        replace_input::decode(&golden)
    );

    // dodash's range-end parameter is $5, read by dd_loop's comparison.
    let dd = w.program.label_address("dd_loop").unwrap();
    let point = InjectionPoint::new(dd, InjectTarget::Register(Reg::r(5)));
    let limits = SearchLimits {
        exec: ExecLimits::with_max_steps(20_000),
        max_states: 100_000,
        max_solutions: 10,
        max_time: Some(Duration::from_secs(30)),
        ..SearchLimits::default()
    };
    let outcome = run_point(
        &w.program,
        &w.detectors,
        &w.input,
        &point,
        &Predicate::WrongOutput {
            expected: golden.clone(),
        },
        &limits,
    );
    println!(
        "\ninjection {point}: {} states explored, {} incorrect outcomes\n",
        outcome.report.states_explored,
        outcome.report.solutions.len()
    );
    let original: Vec<i64> = "axbxdx".chars().map(|c| i64::from(u32::from(c))).collect();
    for sol in &outcome.report.solutions {
        let out = sol.state.output_ints();
        let note = if out == original {
            "  <- original string returned unmodified (the paper's scenario)"
        } else {
            ""
        };
        println!(
            "  {:>9} | `{}`{}",
            sol.state.status().to_string(),
            replace_input::decode(&out),
            note
        );
    }
}
