//! The paper's central soundness claim (§3.2): "while SymPLFIED may
//! uncover false-positives, it will never miss an outcome that may occur
//! in the program due to the error."
//!
//! Property: for any concrete value injected at an injection point, the
//! outcome of the concrete run must be *covered* by some terminal state of
//! the symbolic search from the same point — same status class, and each
//! printed value either equal or abstracted to `err`.

use proptest::prelude::*;
use symplfied::check::{search_many, Predicate, SearchLimits};
use symplfied::inject::{prepare, InjectTarget, InjectionPoint};
use symplfied::machine::{ExecLimits, MachineState, OutItem, Status};
use symplfied::prelude::*;
use symplfied::ssim::{replay_register_witness, ConcreteOutcome};

/// Whether a symbolic terminal state covers a concrete outcome.
fn covers(symbolic: &MachineState, concrete: &ConcreteOutcome) -> bool {
    match (symbolic.status(), concrete) {
        (Status::Halted, ConcreteOutcome::Output(values)) => {
            let sym: Vec<&OutItem> = symbolic
                .output()
                .iter()
                .filter(|o| matches!(o, OutItem::Val(_)))
                .collect();
            sym.len() == values.len()
                && sym.iter().zip(values).all(|(s, v)| match s {
                    OutItem::Val(Value::Int(i)) => i == v,
                    OutItem::Val(Value::Err) => true,
                    OutItem::Str(_) => false,
                })
        }
        (Status::Exception(_), ConcreteOutcome::Crash(_)) => true,
        (Status::TimedOut, ConcreteOutcome::Hang) => true,
        (Status::Detected(a), ConcreteOutcome::Detected(b)) => a == b,
        _ => false,
    }
}

fn check_coverage(
    workload: &symplfied::apps::Workload,
    breakpoint: usize,
    reg: Reg,
    value: i64,
    max_steps: u64,
) -> Result<(), TestCaseError> {
    let exec = ExecLimits::with_max_steps(max_steps);
    // Concrete run with the injected value.
    let Some(replay) = replay_register_witness(
        &workload.program,
        &workload.detectors,
        &workload.input,
        breakpoint,
        1,
        reg,
        value,
        &exec,
    ) else {
        // Breakpoint off the golden path: nothing to cover.
        return Ok(());
    };

    // Symbolic search from the same point.
    let point = InjectionPoint::new(breakpoint, InjectTarget::Register(reg));
    let prep = prepare(
        &workload.program,
        &workload.detectors,
        &workload.input,
        &point,
        &exec,
    );
    prop_assert!(prep.activated);
    let report = search_many(
        &workload.program,
        &workload.detectors,
        prep.seeds,
        &Predicate::Any,
        &SearchLimits {
            exec,
            max_states: 500_000,
            max_solutions: 100_000,
            max_time: None,
        },
    );
    prop_assert!(
        report.exhausted,
        "soundness check needs a complete search ({} states)",
        report.states_explored
    );
    prop_assert!(
        report.solutions.iter().any(|s| covers(&s.state, &replay.outcome)),
        "no symbolic terminal covers concrete outcome {:?} (value {value} in {reg} @{breakpoint}); \
         symbolic outcomes: {:?}",
        replay.outcome,
        report
            .solutions
            .iter()
            .map(|s| format!("{} `{}`", s.state.status(), s.state.rendered_output()))
            .collect::<Vec<_>>()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn factorial_symbolic_covers_concrete(
        value in prop_oneof![(-10i64..=10), Just(i64::MAX), Just(i64::MIN), any::<i64>()],
        bp_choice in 0usize..4,
        n in 1i64..6,
    ) {
        // Injection points inside the loop: setgt(4), mult(6), subi(7), print(10).
        let breakpoints = [(4usize, 3u8), (6, 3), (7, 3), (10, 2)];
        let (bp, reg) = breakpoints[bp_choice];
        let w = symplfied::apps::factorial().with_input(vec![n]);
        check_coverage(&w, bp, Reg::r(reg), value, 1_500)?;
    }

    #[test]
    fn factorial_with_detectors_symbolic_covers_concrete(
        value in prop_oneof![(-10i64..=10), any::<i64>()],
        n in 1i64..5,
    ) {
        // The loop counter at the decrement (`subi $3 $3 #1`, address 10).
        let w = symplfied::apps::factorial_with_detectors().with_input(vec![n]);
        check_coverage(&w, 10, Reg::r(3), value, 1_500)?;
    }

    #[test]
    fn sum_symbolic_covers_concrete(
        value in prop_oneof![(-5i64..=15), any::<i64>()],
        n in 1i64..6,
    ) {
        // The accumulator at `add $2, $2, $3` (address 5).
        let w = symplfied::apps::sum().with_input(vec![n]);
        check_coverage(&w, 5, Reg::r(2), value, 1_000)?;
    }
}
