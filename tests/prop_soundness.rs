//! The paper's central soundness claim (§3.2): "while SymPLFIED may
//! uncover false-positives, it will never miss an outcome that may occur
//! in the program due to the error."
//!
//! Property: for any concrete value injected at an injection point, the
//! outcome of the concrete run must be *covered* by some terminal state of
//! the symbolic search from the same point — same status class, and each
//! printed value either equal or abstracted to `err`.

use proptest::prelude::*;
use symplfied::check::{search_many, Predicate, SearchLimits};
use symplfied::inject::{prepare, InjectTarget, InjectionPoint};
use symplfied::machine::{ExecLimits, MachineState, OutItem, Status};
use symplfied::prelude::*;
use symplfied::ssim::{replay_register_witness, ConcreteOutcome};

/// Whether a symbolic terminal state covers a concrete outcome.
fn covers(symbolic: &MachineState, concrete: &ConcreteOutcome) -> bool {
    match (symbolic.status(), concrete) {
        (Status::Halted, ConcreteOutcome::Output(values)) => {
            let sym: Vec<&OutItem> = symbolic
                .output()
                .iter()
                .filter(|o| matches!(o, OutItem::Val(_)))
                .collect();
            sym.len() == values.len()
                && sym.iter().zip(values).all(|(s, v)| match s {
                    OutItem::Val(Value::Int(i)) => i == v,
                    OutItem::Val(Value::Err) => true,
                    OutItem::Str(_) => false,
                })
        }
        (Status::Exception(_), ConcreteOutcome::Crash(_)) => true,
        (Status::TimedOut, ConcreteOutcome::Hang) => true,
        (Status::Detected(a), ConcreteOutcome::Detected(b)) => a == b,
        _ => false,
    }
}

fn check_coverage(
    workload: &symplfied::apps::Workload,
    breakpoint: usize,
    reg: Reg,
    value: i64,
    max_steps: u64,
) -> Result<(), TestCaseError> {
    let exec = ExecLimits::with_max_steps(max_steps);
    // Concrete run with the injected value.
    let Some(replay) = replay_register_witness(
        &workload.program,
        &workload.detectors,
        &workload.input,
        breakpoint,
        1,
        reg,
        value,
        &exec,
    ) else {
        // Breakpoint off the golden path: nothing to cover.
        return Ok(());
    };

    // Symbolic search from the same point.
    let point = InjectionPoint::new(breakpoint, InjectTarget::Register(reg));
    let prep = prepare(
        &workload.program,
        &workload.detectors,
        &workload.input,
        &point,
        &exec,
    );
    prop_assert!(prep.activated);
    let report = search_many(
        &workload.program,
        &workload.detectors,
        prep.seeds,
        &Predicate::Any,
        &SearchLimits {
            exec,
            max_states: 500_000,
            max_solutions: 100_000,
            max_time: None,
            ..SearchLimits::default()
        },
    );
    prop_assert!(
        report.exhausted,
        "soundness check needs a complete search ({} states)",
        report.states_explored
    );
    prop_assert!(
        report.solutions.iter().any(|s| covers(&s.state, &replay.outcome)),
        "no symbolic terminal covers concrete outcome {:?} (value {value} in {reg} @{breakpoint}); \
         symbolic outcomes: {:?}",
        replay.outcome,
        report
            .solutions
            .iter()
            .map(|s| format!("{} `{}`", s.state.status(), s.state.rendered_output()))
            .collect::<Vec<_>>()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn factorial_symbolic_covers_concrete(
        value in prop_oneof![(-10i64..=10), Just(i64::MAX), Just(i64::MIN), any::<i64>()],
        bp_choice in 0usize..4,
        n in 1i64..6,
    ) {
        // Injection points inside the loop: setgt(4), mult(6), subi(7), print(10).
        let breakpoints = [(4usize, 3u8), (6, 3), (7, 3), (10, 2)];
        let (bp, reg) = breakpoints[bp_choice];
        let w = symplfied::apps::factorial().with_input(vec![n]);
        check_coverage(&w, bp, Reg::r(reg), value, 1_500)?;
    }

    #[test]
    fn factorial_with_detectors_symbolic_covers_concrete(
        value in prop_oneof![(-10i64..=10), any::<i64>()],
        n in 1i64..5,
    ) {
        // The loop counter at the decrement (`subi $3 $3 #1`, address 10).
        let w = symplfied::apps::factorial_with_detectors().with_input(vec![n]);
        check_coverage(&w, 10, Reg::r(3), value, 1_500)?;
    }

    #[test]
    fn sum_symbolic_covers_concrete(
        value in prop_oneof![(-5i64..=15), any::<i64>()],
        n in 1i64..6,
    ) {
        // The accumulator at `add $2, $2, $3` (address 5).
        let w = symplfied::apps::sum().with_input(vec![n]);
        check_coverage(&w, 5, Reg::r(2), value, 1_000)?;
    }
}

// ---------------------------------------------------------------------
// State-representation equivalence (the copy-on-write refactor)
// ---------------------------------------------------------------------

mod state_representation {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn std_hash(state: &MachineState) -> u64 {
        let mut h = DefaultHasher::new();
        state.hash(&mut h);
        h.finish()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// CoW-forked states must be indistinguishable from independently
        /// constructed states with the same contents: `==`, the std hash,
        /// and the 128-bit search fingerprint all agree, regardless of how
        /// the base/delta memory layers are split.
        #[test]
        fn cow_forked_states_match_fresh_states(
            base in prop::collection::vec((0u64..48, -100i64..=100), 1..40),
            extra in prop::collection::vec((0u64..64, -100i64..=100), 0..24),
        ) {
            let mut origin = MachineState::new();
            origin.load_memory(base.iter().map(|&(slot, v)| (slot * 8, v)));

            // Fork and keep writing: writes land in the fork's delta while
            // the base image stays shared with the origin.
            let mut fork = origin.clone();
            prop_assert!(fork.memory_shares_storage(&origin));
            for &(slot, v) in &extra {
                fork.set_mem(slot * 8, Value::Int(v));
            }

            // The same contents, built flat with no sharing anywhere.
            let mut fresh = MachineState::new();
            fresh.load_memory(base.iter().map(|&(slot, v)| (slot * 8, v)));
            for &(slot, v) in &extra {
                fresh.set_mem(slot * 8, Value::Int(v));
            }

            prop_assert_eq!(&fork, &fresh);
            prop_assert_eq!(std_hash(&fork), std_hash(&fresh));
            prop_assert_eq!(fork.fingerprint(), fresh.fingerprint());
            // And the origin never observed the fork's writes.
            prop_assert_eq!(origin.memory_len(), {
                let mut distinct: Vec<u64> = base.iter().map(|&(s, _)| s).collect();
                distinct.sort_unstable();
                distinct.dedup();
                distinct.len()
            });
        }
    }
}

// ---------------------------------------------------------------------
// Shared state-mutation machinery: random operation sequences over the
// full write-path surface of the machine state, used by the rolling-digest
// consistency tests and the codec round-trip tests alike.
// ---------------------------------------------------------------------

mod state_ops {
    use super::*;

    /// One mutation drawn from the full write-path surface of the machine
    /// state (every operation that can move a rolling component fold).
    #[derive(Debug, Clone)]
    pub enum Op {
        SetReg(u8, Value),
        CopyReg(u8, Value, Location),
        SetMem(u64, Value),
        CopyMem(u64, Value, Location),
        /// Bulk image load; sized so that runs of these cross the CoW
        /// delta-compaction threshold while the base is shared by a fork.
        LoadMemory(Vec<(u64, i64)>),
        Constrain(Location, Constraint),
        PushVal(Value),
        PushStr,
        ReadInput,
        SetPc(usize),
        BumpSteps,
        SetStatus(u8),
        /// Clone the newest state (CoW fork) and continue mutating the
        /// clone; the original is re-checked at the end.
        Fork,
        /// Swap the two newest states, so later writes hit a fork whose
        /// base is shared from the *other* side.
        Swap,
    }

    fn value_strategy() -> impl Strategy<Value = Value> {
        prop_oneof![4 => (-50i64..=50).prop_map(Value::Int), 1 => Just(Value::Err)]
    }

    fn location_strategy() -> impl Strategy<Value = Location> {
        prop_oneof![
            (1u8..28).prop_map(Location::reg),
            (0u64..40).prop_map(|slot| Location::Mem(slot * 8)),
        ]
    }

    fn constraint_strategy() -> impl Strategy<Value = Constraint> {
        (0u8..6, -5i64..=5).prop_map(|(kind, c)| match kind {
            0 => Constraint::Eq(c),
            1 => Constraint::Ne(c),
            2 => Constraint::Gt(c),
            3 => Constraint::Lt(c),
            4 => Constraint::Ge(c),
            _ => Constraint::Le(c),
        })
    }

    pub fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => ((1u8..30), value_strategy()).prop_map(|(r, v)| Op::SetReg(r, v)),
            2 => ((1u8..30), value_strategy(), location_strategy())
                .prop_map(|(r, v, f)| Op::CopyReg(r, v, f)),
            4 => ((0u64..48), value_strategy()).prop_map(|(s, v)| Op::SetMem(s * 8, v)),
            2 => ((0u64..48), value_strategy(), location_strategy())
                .prop_map(|(s, v, f)| Op::CopyMem(s * 8, v, f)),
            1 => prop::collection::vec(((0u64..96), (-9i64..=9)), 1..80)
                .prop_map(|img| Op::LoadMemory(
                    img.into_iter().map(|(s, v)| (s * 8, v)).collect()
                )),
            3 => (location_strategy(), constraint_strategy())
                .prop_map(|(l, c)| Op::Constrain(l, c)),
            2 => value_strategy().prop_map(Op::PushVal),
            1 => Just(Op::PushStr),
            1 => Just(Op::ReadInput),
            1 => (0usize..64).prop_map(Op::SetPc),
            1 => Just(Op::BumpSteps),
            1 => (0u8..5).prop_map(Op::SetStatus),
            2 => Just(Op::Fork),
            1 => Just(Op::Swap),
        ]
    }

    pub fn apply(state: &mut MachineState, op: &Op) {
        match op {
            Op::SetReg(r, v) => state.set_reg(Reg::r(*r), *v),
            Op::CopyReg(r, v, from) => state.copy_reg_with_constraints(Reg::r(*r), *v, *from),
            Op::SetMem(a, v) => state.set_mem(*a, *v),
            Op::CopyMem(a, v, from) => state.copy_mem_with_constraints(*a, *v, *from),
            Op::LoadMemory(img) => state.load_memory(img.iter().copied()),
            Op::Constrain(l, c) => {
                let _ = state.constraints_mut().constrain(*l, *c);
            }
            Op::PushVal(v) => state.push_output(OutItem::Val(*v)),
            Op::PushStr => state.push_output(OutItem::Str("s".into())),
            Op::ReadInput => {
                let _ = state.read_input();
            }
            Op::SetPc(pc) => state.set_pc(*pc),
            Op::BumpSteps => state.bump_steps(),
            Op::SetStatus(k) => state.set_status(match k {
                0 => Status::Running,
                1 => Status::Halted,
                2 => Status::Exception(symplfied::machine::Exception::DivByZero),
                3 => Status::Detected(2),
                _ => Status::TimedOut,
            }),
            Op::Fork | Op::Swap => unreachable!("pool-level ops"),
        }
    }

    /// Runs an op sequence against a fresh pool (forks clone the newest
    /// state, swaps reorder the two newest), returning every state built
    /// along the way — the CoW-layered zoo the digest and codec tests
    /// exercise.
    pub fn run_ops(input: &[i64], ops: &[Op]) -> Vec<MachineState> {
        let mut pool = vec![MachineState::with_input(input.to_vec())];
        for op in ops {
            match op {
                Op::Fork => {
                    let fork = pool.last().expect("nonempty pool").clone();
                    pool.push(fork);
                }
                Op::Swap => {
                    let n = pool.len();
                    if n >= 2 {
                        pool.swap(n - 1, n - 2);
                    }
                }
                _ => apply(pool.last_mut().expect("nonempty pool"), op),
            }
        }
        pool
    }
}

// ---------------------------------------------------------------------
// Rolling-digest consistency: the incrementally-maintained fingerprint
// must equal a from-scratch recompute after arbitrary write/fork/compact
// sequences through every mutator the executors use.
// ---------------------------------------------------------------------

mod digest_consistency {
    use super::state_ops::{apply, op_strategy, run_ops, Op};
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// After every single mutation — across forks, shared-base writes,
        /// and delta compactions — the rolling fingerprint equals the
        /// O(|state|) from-scratch recompute, on the mutated state and
        /// (at the end) on every forked ancestor it shares storage with.
        #[test]
        fn rolling_fingerprint_equals_recompute(
            ops in prop::collection::vec(op_strategy(), 1..120),
        ) {
            let mut pool = vec![MachineState::with_input(vec![7, -3, 0, 11])];
            for op in &ops {
                match op {
                    Op::Fork => {
                        let fork = pool.last().expect("nonempty pool").clone();
                        pool.push(fork);
                    }
                    Op::Swap => {
                        let n = pool.len();
                        if n >= 2 {
                            pool.swap(n - 1, n - 2);
                        }
                    }
                    _ => apply(pool.last_mut().expect("nonempty pool"), op),
                }
                let s = pool.last().expect("nonempty pool");
                prop_assert_eq!(
                    s.fingerprint(),
                    s.fingerprint_from_scratch(),
                    "rolling digest desynced after {:?}",
                    op
                );
            }
            // Every ancestor fork must still be consistent (writes to the
            // newest state must never corrupt a sharing sibling's caches)…
            for s in &pool {
                prop_assert_eq!(s.fingerprint(), s.fingerprint_from_scratch());
            }
            // …and equal-content states must agree on the digest even when
            // their mutation histories (and base/delta splits) differ.
            let replayed = run_ops(&[7, -3, 0, 11], &ops);
            for (a, b) in pool.iter().zip(&replayed) {
                prop_assert_eq!(a, b);
                prop_assert_eq!(a.fingerprint(), b.fingerprint());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Codec round-trip: encode → decode must preserve full `Eq`, and the
// decoded state's re-derived rolling fingerprint must agree with both the
// from-scratch recompute and the original — the property the disk-spilling
// frontier's segment replay stands on.
// ---------------------------------------------------------------------

mod codec_roundtrip {
    use super::state_ops::{op_strategy, run_ops};
    use super::*;
    use symplfied::machine::{decode_state, encode_state};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn encode_decode_preserves_eq_and_fingerprints(
            ops in prop::collection::vec(op_strategy(), 1..120),
        ) {
            // Every state in the pool — CoW-forked, shared-base, compacted,
            // swapped — must survive a codec round-trip.
            for original in run_ops(&[7, -3, 0, 11], &ops) {
                let mut buf = Vec::new();
                encode_state(&original, &mut buf);
                let (decoded, consumed) = decode_state(&buf)
                    .expect("well-formed encodings must decode");
                prop_assert_eq!(consumed, buf.len(), "whole record consumed");
                prop_assert_eq!(&decoded, &original, "full Eq after round-trip");
                prop_assert_eq!(
                    decoded.fingerprint(),
                    decoded.fingerprint_from_scratch(),
                    "decoded rolling caches must be re-derived consistently"
                );
                prop_assert_eq!(decoded.fingerprint(), original.fingerprint());
            }
        }

        /// Concatenated records (the spill-segment layout) decode back in
        /// order, one at a time.
        #[test]
        fn segment_streams_roundtrip(
            ops in prop::collection::vec(op_strategy(), 1..60),
        ) {
            let pool = run_ops(&[1, 2], &ops);
            let mut buf = Vec::new();
            for s in &pool {
                encode_state(s, &mut buf);
            }
            let mut pos = 0usize;
            let mut decoded = Vec::new();
            while pos < buf.len() {
                let (s, consumed) = decode_state(&buf[pos..]).expect("stream record");
                pos += consumed;
                decoded.push(s);
            }
            prop_assert_eq!(&decoded, &pool);
        }
    }
}

// ---------------------------------------------------------------------
// Wire-protocol round-trips: the frames a distributed campaign ships —
// search reports, task results, whole task frames — must decode back to
// full-Eq equality, over the same CoW-layered state zoo (state_ops) the
// state-codec tests use.
// ---------------------------------------------------------------------

mod wire_roundtrip {
    use super::state_ops::{op_strategy, run_ops};
    use super::*;
    use std::time::Duration;
    use symplfied::check::codec::{decode_search_report, encode_search_report};
    use symplfied::check::{OutcomeCounts, SearchReport, Solution};
    use symplfied::cluster::{Finding, TaskResult, TaskSpec};
    use symplfied::wire::{
        decode_message, decode_task_result, encode_message, encode_task_result, Message, TaskFrame,
    };

    /// Builds a search report whose solutions are the op-generated states
    /// and whose statistics come from the sampled words.
    fn report_from(states: Vec<MachineState>, words: &[u64]) -> SearchReport {
        let w = |i: usize| words[i % words.len()] as usize;
        let solutions: Vec<Solution> = states
            .into_iter()
            .enumerate()
            .map(|(i, state)| Solution {
                state,
                trace: (0..(i % 7)).collect(),
            })
            .collect();
        let mut report = SearchReport {
            solutions,
            states_explored: w(0),
            terminals: OutcomeCounts {
                halted: w(1),
                crashed: w(2),
                hung: w(3),
                detected: w(4),
            },
            duplicate_hits: w(5),
            exhausted: w(6) % 2 == 0,
            hit_state_cap: w(7) % 2 == 0,
            hit_solution_cap: w(8) % 2 == 0,
            hit_time_cap: w(9) % 2 == 0,
            elapsed: Duration::from_micros(words[10 % words.len()]),
            states_per_second: 0.0,
            workers: w(11),
            steals: w(12),
            peak_frontier_len: w(0).wrapping_add(1),
            peak_frontier_bytes: w(1).wrapping_add(2),
            spilled_states: w(2) % 1000,
            // Process-local memo statistics: never wire-encoded, so the
            // round-trip fixtures pin them at zero.
            memo_hits: 0,
            memo_states_skipped: 0,
        };
        report.states_per_second = SearchReport::throughput(report.states_explored, report.elapsed);
        report
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn search_reports_roundtrip_with_full_eq(
            ops in prop::collection::vec(op_strategy(), 1..60),
            words in prop::collection::vec(0u64..5_000_000, 13..14),
        ) {
            let report = report_from(run_ops(&[3, -8], &ops), &words);
            let mut buf = Vec::new();
            encode_search_report(&report, &mut buf);
            let mut pos = 0;
            let decoded = decode_search_report(&buf, &mut pos)
                .expect("well-formed report encodings must decode");
            prop_assert_eq!(pos, buf.len(), "whole record consumed");
            prop_assert_eq!(&decoded, &report, "full Eq after round-trip");
        }

        #[test]
        fn task_results_and_result_frames_roundtrip(
            ops in prop::collection::vec(op_strategy(), 1..40),
            words in prop::collection::vec(0u64..5_000_000, 13..14),
        ) {
            let w = |i: usize| words[i % words.len()] as usize;
            let result = TaskResult {
                id: w(0),
                points_examined: w(1),
                points_total: w(2),
                activated: w(3),
                findings: w(4),
                completed: w(5) % 2 == 0,
                elapsed: Duration::from_micros(words[6 % words.len()]),
                states_explored: w(7),
                point_workers: w(8),
                steals: w(9),
                peak_frontier_len: w(10),
                peak_frontier_bytes: w(11),
                spilled_states: w(12),
                // Process-local cache stats: not wire-encoded, so a
                // round-trip only preserves them when they are zero.
                memo_hits: 0,
                memo_states_skipped: 0,
                prefix_steps_saved: 0,
            };
            // Bare record round-trip.
            let mut buf = Vec::new();
            encode_task_result(&result, &mut buf);
            let mut pos = 0;
            prop_assert_eq!(&decode_task_result(&buf, &mut pos).unwrap(), &result);
            prop_assert_eq!(pos, buf.len());

            // Full TaskDone frame with op-generated solution states.
            let findings: Vec<Finding> = run_ops(&[2], &ops)
                .into_iter()
                .enumerate()
                .map(|(i, state)| Finding {
                    task_id: result.id,
                    point: InjectionPoint::new(i, InjectTarget::Register(Reg::r(3))),
                    solution: Solution { state, trace: vec![0, i] },
                })
                .collect();
            let frame = encode_message(&Message::TaskDone {
                result: result.clone(),
                findings: findings.clone(),
            })
            .expect("result frames are always encodable");
            let Message::TaskDone { result: dr, findings: df } =
                decode_message(&frame).expect("result frames decode")
            else {
                panic!("wrong message kind");
            };
            prop_assert_eq!(&dr, &result);
            prop_assert_eq!(&df, &findings);
        }

        #[test]
        fn task_frames_roundtrip(
            breakpoints in prop::collection::vec(0usize..200, 1..12),
            words in prop::collection::vec(0u64..1_000_000, 6..7),
        ) {
            let spec = TaskSpec {
                id: words[0] as usize,
                points: breakpoints
                    .iter()
                    .map(|&b| InjectionPoint::new(b, InjectTarget::ProgramCounter))
                    .collect(),
            };
            let task = TaskFrame {
                program_id: "tcas".into(),
                program_digest: u128::from(words[1]) << 64 | u128::from(words[2]),
                input: vec![words[3] as i64, -(words[4] as i64)],
                spec,
                predicate: Predicate::WrongOutput { expected: vec![1, 2, 3] },
                search: SearchLimits {
                    max_states: words[5] as usize,
                    max_time: Some(Duration::from_millis(words[0])),
                    ..SearchLimits::default()
                },
                task_budget: Some(Duration::from_secs(words[1] % 1000)),
                max_findings: words[2] as usize,
                point_workers: 1 + (words[3] as usize % 8),
                heartbeat_interval: Duration::from_millis(1 + words[4] % 10_000),
            };
            let frame = encode_message(&Message::Task(task.clone())).unwrap();
            let Message::Task(decoded) = decode_message(&frame).unwrap() else {
                panic!("wrong message kind");
            };
            prop_assert_eq!(&decoded.program_id, &task.program_id);
            prop_assert_eq!(decoded.program_digest, task.program_digest);
            prop_assert_eq!(&decoded.input, &task.input);
            prop_assert_eq!(&decoded.spec, &task.spec);
            prop_assert_eq!(
                format!("{:?}", decoded.predicate),
                format!("{:?}", task.predicate)
            );
            prop_assert_eq!(decoded.search.max_states, task.search.max_states);
            prop_assert_eq!(decoded.search.max_time, task.search.max_time);
            prop_assert_eq!(decoded.task_budget, task.task_budget);
            prop_assert_eq!(decoded.max_findings, task.max_findings);
            prop_assert_eq!(decoded.point_workers, task.point_workers);
            prop_assert_eq!(decoded.heartbeat_interval, task.heartbeat_interval);
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoint-file round-trips: a campaign checkpoint must parse back to
// the exact entries written, drop a crash-truncated tail without losing
// the intact prefix, and refuse (or prefix-truncate at) corruption —
// never invent or alter an entry.
// ---------------------------------------------------------------------

mod checkpoint_roundtrip {
    use super::state_ops::{op_strategy, run_ops};
    use super::*;
    use std::time::Duration;
    use symplfied::check::Solution;
    use symplfied::cluster::{Finding, TaskResult};
    use symplfied::wire::{parse_checkpoint, CheckpointWriter};

    fn entry_from(
        id: usize,
        words: &[u64],
        states: Vec<MachineState>,
    ) -> (TaskResult, Vec<Finding>) {
        let w = |i: usize| words[i % words.len()] as usize;
        let result = TaskResult {
            id,
            points_examined: w(1),
            points_total: w(2),
            activated: w(3),
            findings: states.len(),
            completed: w(4) % 2 == 0,
            elapsed: Duration::from_micros(words[5 % words.len()]),
            states_explored: w(6),
            point_workers: 1 + w(7) % 8,
            steals: w(8),
            peak_frontier_len: w(9),
            peak_frontier_bytes: w(10),
            spilled_states: w(11),
            memo_hits: 0,
            memo_states_skipped: 0,
            prefix_steps_saved: 0,
        };
        let findings = states
            .into_iter()
            .enumerate()
            .map(|(i, state)| Finding {
                task_id: id,
                point: InjectionPoint::new(i, InjectTarget::LoadedWord),
                solution: Solution {
                    state,
                    trace: vec![i, 0],
                },
            })
            .collect();
        (result, findings)
    }

    /// Writes entries through the real `CheckpointWriter` and reads the
    /// file bytes back.
    fn checkpoint_bytes(
        entries: &[(TaskResult, Vec<Finding>)],
        key: u128,
        total: usize,
    ) -> Vec<u8> {
        let path = std::env::temp_dir().join(format!(
            "sympl-ckpt-prop-{}-{key:x}-{total}.bin",
            std::process::id()
        ));
        let mut writer = CheckpointWriter::create(&path, key, total).expect("create checkpoint");
        for (result, findings) in entries {
            writer.append(result, findings).expect("append record");
        }
        let bytes = std::fs::read(&path).expect("read checkpoint back");
        let _ = std::fs::remove_file(&path);
        bytes
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn checkpoints_roundtrip_with_full_eq(
            ops in prop::collection::vec(op_strategy(), 1..30),
            words in prop::collection::vec(0u64..5_000_000, 12..13),
            tasks in 1usize..6,
        ) {
            let states = run_ops(&[5, -2], &ops);
            let entries: Vec<_> = (0..tasks)
                .map(|id| entry_from(id, &words, if id == 0 { states.clone() } else { Vec::new() }))
                .collect();
            let key = u128::from(words[0]) << 64 | u128::from(words[1]);
            let bytes = checkpoint_bytes(&entries, key, tasks);
            let file = parse_checkpoint(&bytes).expect("intact checkpoints parse");
            prop_assert_eq!(file.key, key);
            prop_assert_eq!(file.tasks_total, tasks);
            prop_assert!(!file.truncated_tail);
            prop_assert_eq!(&file.entries, &entries, "full Eq after round-trip");
        }

        #[test]
        fn truncated_checkpoints_keep_the_intact_prefix(
            words in prop::collection::vec(0u64..5_000_000, 12..13),
            tasks in 2usize..6,
            cut in 1usize..200,
        ) {
            let entries: Vec<_> = (0..tasks)
                .map(|id| entry_from(id, &words, Vec::new()))
                .collect();
            let bytes = checkpoint_bytes(&entries, 7, tasks);
            // Cut somewhere inside the records region (never into the
            // header): a mid-append crash leaves exactly this shape.
            let header_end = checkpoint_bytes(&[], 7, tasks).len();
            let cut = (bytes.len() - cut.min(bytes.len() - header_end)).max(header_end);
            let file = parse_checkpoint(&bytes[..cut]).expect("truncation is tolerated");
            prop_assert!(file.entries.len() < entries.len() || !file.truncated_tail);
            // The surviving entries are an exact prefix — never altered,
            // never reordered.
            prop_assert_eq!(&file.entries[..], &entries[..file.entries.len()]);
        }

        #[test]
        fn corrupt_checkpoints_never_invent_entries(
            words in prop::collection::vec(0u64..5_000_000, 12..13),
            tasks in 1usize..5,
            flip_at in 0usize..10_000,
            flip_bits in 1u8..=255,
        ) {
            let entries: Vec<_> = (0..tasks)
                .map(|id| entry_from(id, &words, Vec::new()))
                .collect();
            let mut bytes = checkpoint_bytes(&entries, 11, tasks);
            let idx = flip_at % bytes.len();
            bytes[idx] ^= flip_bits;
            // A flipped byte either fails the parse outright (header or
            // record damage) or truncates to an intact prefix; it must
            // never yield an entry that was not written.
            if let Ok(file) = parse_checkpoint(&bytes) {
                prop_assert!(file.entries.len() <= entries.len());
                prop_assert_eq!(&file.entries[..], &entries[..file.entries.len()]);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Shard splitting: any sequence of `split_spec` applications must yield
// leaves that are pairwise disjoint, union back to the original point
// set, and preserve the canonical point order — the invariant the
// elastic coordinator's part re-assembly (and the outcome digest)
// stands on.
// ---------------------------------------------------------------------

mod split_spec {
    use super::*;
    use symplfied::cluster::{split_spec, TaskSpec};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn any_split_sequence_partitions_the_shard_in_order(
            breakpoints in prop::collection::vec(0usize..500, 1..40),
            choices in prop::collection::vec(0usize..64, 0..12),
        ) {
            let original = TaskSpec {
                id: 3,
                points: breakpoints
                    .iter()
                    .map(|&b| InjectionPoint::new(b, InjectTarget::ProgramCounter))
                    .collect(),
            };
            // Apply an arbitrary split schedule: each choice picks the
            // leaf to split next (mod the current leaf count), exactly
            // like an adversarial steal schedule would.
            let mut leaves = vec![original.clone()];
            for &choice in &choices {
                let idx = choice % leaves.len();
                if let Some((left, right)) = split_spec(&leaves[idx]) {
                    // A split never loses, invents, or reorders points,
                    // and both halves keep the parent's task id.
                    prop_assert!(!left.points.is_empty());
                    prop_assert!(!right.points.is_empty());
                    prop_assert_eq!(left.points.len(), leaves[idx].points.len().div_ceil(2));
                    prop_assert_eq!(left.id, leaves[idx].id);
                    prop_assert_eq!(right.id, leaves[idx].id);
                    leaves.splice(idx..=idx, [left, right]);
                } else {
                    // Only single-point leaves are unsplittable.
                    prop_assert_eq!(leaves[idx].points.len(), 1);
                }
            }
            // Disjointness + union + order, all in one: the in-order
            // concatenation of the leaves is byte-for-byte the original
            // canonical point sequence.
            let reassembled: Vec<_> = leaves
                .iter()
                .flat_map(|leaf| leaf.points.iter().copied())
                .collect();
            prop_assert_eq!(&reassembled, &original.points);
            // And splitting is deterministic: the same leaf splits the
            // same way every time.
            if original.points.len() >= 2 {
                prop_assert_eq!(split_spec(&original), split_spec(&original));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fingerprint-dedup equivalence: the Explorer's 16-byte visited set must
// not change search outcomes versus retaining whole states.
// ---------------------------------------------------------------------

mod fingerprint_dedup {
    use super::*;
    use std::collections::{HashSet, VecDeque};
    use symplfied::check::{Explorer, OutcomeCounts};

    /// A reference BFS that deduplicates on retained whole `MachineState`
    /// values — the pre-refactor behaviour — mirroring the Explorer's
    /// expansion order and budget accounting exactly.
    fn reference_explore(
        w: &symplfied::apps::Workload,
        seeds: Vec<MachineState>,
        limits: &SearchLimits,
    ) -> (usize, usize, OutcomeCounts, usize) {
        let mut visited: HashSet<MachineState> = HashSet::new();
        let mut frontier: VecDeque<MachineState> = VecDeque::new();
        for s in seeds {
            if visited.insert(s.clone()) {
                frontier.push_back(s);
            }
        }
        let mut states = 0usize;
        let mut duplicates = 0usize;
        let mut solutions = 0usize;
        let mut terminals = OutcomeCounts::default();
        while let Some(state) = frontier.pop_front() {
            if states >= limits.max_states {
                break;
            }
            states += 1;
            if state.status().is_terminal() {
                terminals.record(&state);
                solutions += 1;
                continue;
            }
            for succ in state.step(&w.program, &w.detectors, &limits.exec) {
                if visited.insert(succ.clone()) {
                    frontier.push_back(succ);
                } else {
                    duplicates += 1;
                }
            }
        }
        (states, duplicates, terminals, solutions)
    }

    fn assert_equivalent(
        w: &symplfied::apps::Workload,
        breakpoint: usize,
        reg: Reg,
        limits: &SearchLimits,
    ) {
        let point = InjectionPoint::new(breakpoint, InjectTarget::Register(reg));
        let prep = prepare(&w.program, &w.detectors, &w.input, &point, &limits.exec);
        assert!(
            prep.activated,
            "breakpoint {breakpoint} must be on the golden path"
        );

        let report = Explorer::new(&w.program, &w.detectors)
            .with_limits(limits.clone())
            .explore(prep.seeds.clone(), &Predicate::Any);
        let (states, duplicates, terminals, solutions) = reference_explore(w, prep.seeds, limits);

        assert_eq!(report.states_explored, states, "{}: state counts", w.name);
        assert_eq!(
            report.duplicate_hits, duplicates,
            "{}: duplicate hits",
            w.name
        );
        assert_eq!(report.terminals, terminals, "{}: outcome counts", w.name);
        assert_eq!(report.solutions.len(), solutions, "{}: solutions", w.name);
    }

    #[test]
    fn factorial_outcome_counts_unchanged_by_fingerprints() {
        // The §4 walkthrough point: the loop-counter decrement, every n
        // whose golden path enters the loop body.
        for n in 2..=5 {
            let w = symplfied::apps::factorial().with_input(vec![n]);
            let limits = SearchLimits {
                exec: ExecLimits::with_max_steps(500),
                max_states: 1_000_000,
                max_solutions: usize::MAX,
                max_time: None,
                ..SearchLimits::default()
            };
            assert_equivalent(&w, 7, Reg::r(3), &limits);
        }
    }

    #[test]
    fn tcas_outcome_counts_unchanged_by_fingerprints() {
        // A data-register point inside alt_sep_test on the evaluation
        // input, truncated by the same state budget on both engines.
        let w = symplfied::apps::tcas();
        let ast = w.program.label_address("alt_sep_test").expect("tcas label");
        let limits = SearchLimits {
            exec: ExecLimits::with_max_steps(w.max_steps),
            max_states: 30_000,
            max_solutions: usize::MAX,
            max_time: None,
            ..SearchLimits::default()
        };
        assert_equivalent(&w, ast + 3, Reg::r(8), &limits);
    }
}

// ---------------------------------------------------------------------
// Parallel-engine equivalence: the work-stealing ParallelExplorer must
// reproduce the sequential Explorer's results exactly on exhausted
// searches, at every worker count.
// ---------------------------------------------------------------------

mod parallel_equivalence {
    use super::*;
    use symplfied::check::{Explorer, ParallelExplorer, SearchReport};
    use symplfied::machine::Fingerprint;

    /// Content digests of the solution states, order-independent.
    fn solution_digests(report: &SearchReport) -> Vec<Fingerprint> {
        let mut digests: Vec<Fingerprint> = report
            .solutions
            .iter()
            .map(|s| s.state.fingerprint())
            .collect();
        digests.sort_unstable();
        digests
    }

    /// Runs the same exhaustive search sequentially and at 1, 2, and 8
    /// workers, and checks the engines agree on every observable except
    /// ordering: state count, duplicate count, terminal outcome counts,
    /// and the solution *set* (compared by state content digest).
    fn assert_parallel_matches(
        w: &symplfied::apps::Workload,
        breakpoint: usize,
        reg: Reg,
        limits: &SearchLimits,
    ) {
        let point = InjectionPoint::new(breakpoint, InjectTarget::Register(reg));
        let prep = prepare(&w.program, &w.detectors, &w.input, &point, &limits.exec);
        assert!(
            prep.activated,
            "{}: breakpoint {breakpoint} must be on the golden path",
            w.name
        );

        let sequential = Explorer::new(&w.program, &w.detectors)
            .with_limits(limits.clone())
            .explore(prep.seeds.clone(), &Predicate::Any);
        assert!(
            sequential.exhausted,
            "{}: equivalence needs a complete search ({} states)",
            w.name, sequential.states_explored
        );
        assert_eq!(sequential.workers, 1);

        for workers in [1usize, 2, 8] {
            let parallel = ParallelExplorer::new(&w.program, &w.detectors)
                .with_limits(limits.clone())
                .with_workers(workers)
                .explore(prep.seeds.clone(), &Predicate::Any);
            let label = format!("{} @{breakpoint} x{workers}", w.name);
            assert!(parallel.exhausted, "{label}: must exhaust");
            assert_eq!(parallel.workers, workers, "{label}");
            assert_eq!(
                parallel.states_explored, sequential.states_explored,
                "{label}: states"
            );
            assert_eq!(
                parallel.duplicate_hits, sequential.duplicate_hits,
                "{label}: duplicates"
            );
            assert_eq!(
                parallel.terminals, sequential.terminals,
                "{label}: outcomes"
            );
            assert_eq!(
                solution_digests(&parallel),
                solution_digests(&sequential),
                "{label}: solution sets"
            );
        }
    }

    #[test]
    fn factorial_parallel_matches_sequential() {
        // The §4 walkthrough point (loop-counter decrement) for every n
        // whose golden path enters the loop body.
        for n in 2..=5 {
            let w = symplfied::apps::factorial().with_input(vec![n]);
            let limits = SearchLimits {
                exec: ExecLimits::with_max_steps(500),
                max_states: 1_000_000,
                max_solutions: usize::MAX,
                max_time: None,
                ..SearchLimits::default()
            };
            assert_parallel_matches(&w, 7, Reg::r(3), &limits);
        }
    }

    #[test]
    fn tcas_parallel_matches_sequential() {
        // A data-register point (`err` in $8 at address 20) whose search
        // exhausts in a few thousand states on the evaluation input.
        let w = symplfied::apps::tcas();
        let limits = SearchLimits {
            exec: ExecLimits::with_max_steps(w.max_steps),
            max_states: 60_000,
            max_solutions: usize::MAX,
            max_time: None,
            ..SearchLimits::default()
        };
        assert_parallel_matches(&w, 20, Reg::r(8), &limits);
    }

    #[test]
    fn parallel_solution_order_is_canonical() {
        // Repeated parallel runs of the same exhaustive search return the
        // same solution-state set, presented in the documented canonical
        // order (witness length, then trace, then state digest). Traces
        // themselves may differ across runs — they record whichever path
        // won the race to each state — so only the states and the ordering
        // *rule* are asserted, not the exact trace contents.
        let w = symplfied::apps::factorial().with_input(vec![4]);
        let point = InjectionPoint::new(7, InjectTarget::Register(Reg::r(3)));
        let limits = SearchLimits {
            exec: ExecLimits::with_max_steps(500),
            max_states: 1_000_000,
            max_solutions: usize::MAX,
            max_time: None,
            ..SearchLimits::default()
        };
        let prep = prepare(&w.program, &w.detectors, &w.input, &point, &limits.exec);
        let run = || {
            ParallelExplorer::new(&w.program, &w.detectors)
                .with_limits(limits.clone())
                .with_workers(4)
                .explore(prep.seeds.clone(), &Predicate::Any)
        };
        let a = run();
        let b = run();
        assert!(a.exhausted && b.exhausted);
        assert_eq!(solution_digests(&a), solution_digests(&b));
        for report in [&a, &b] {
            let keys: Vec<_> = report
                .solutions
                .iter()
                .map(|s| (s.trace.len(), s.trace.clone(), s.state.fingerprint()))
                .collect();
            assert!(
                keys.windows(2).all(|w| w[0] <= w[1]),
                "solutions must come out in canonical order"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Frontier-policy equivalence: exhausted searches must produce identical
// outcome counts and canonical solution sets under every frontier policy
// — Bfs, Dfs, Priority (all heuristics), the disk-spilling window, and
// (for terminals/solutions) iterative deepening — sequentially and on the
// work-stealing engine at 2 and 8 workers.
// ---------------------------------------------------------------------

mod frontier_policy {
    use super::*;
    use symplfied::check::{
        Explorer, FrontierPolicy, ParallelExplorer, PriorityHeuristic, SearchReport,
    };
    use symplfied::machine::Fingerprint;

    fn solution_digests(report: &SearchReport) -> Vec<Fingerprint> {
        let mut digests: Vec<Fingerprint> = report
            .solutions
            .iter()
            .map(|s| s.state.fingerprint())
            .collect();
        digests.sort_unstable();
        digests
    }

    /// Every policy variant under test: (policy, spill budget).
    fn policies() -> Vec<(FrontierPolicy, Option<usize>)> {
        vec![
            (FrontierPolicy::Bfs, None),
            (FrontierPolicy::Dfs, None),
            (
                FrontierPolicy::Priority(PriorityHeuristic::ConstraintMapSize),
                None,
            ),
            (FrontierPolicy::Priority(PriorityHeuristic::Depth), None),
            (FrontierPolicy::Priority(PriorityHeuristic::OutputLen), None),
            // A tiny budget (clamped to the 4 KiB floor) forces the
            // spilling window through constant spill/replay cycles.
            (FrontierPolicy::Bfs, Some(1)),
            (FrontierPolicy::Dfs, Some(1)),
        ]
    }

    fn assert_policies_agree(
        w: &symplfied::apps::Workload,
        breakpoint: usize,
        reg: Reg,
        limits: &SearchLimits,
        worker_counts: &[usize],
    ) {
        let point = InjectionPoint::new(breakpoint, InjectTarget::Register(reg));
        let prep = prepare(&w.program, &w.detectors, &w.input, &point, &limits.exec);
        assert!(
            prep.activated,
            "{}: breakpoint {breakpoint} must be on the golden path",
            w.name
        );

        let reference = Explorer::new(&w.program, &w.detectors)
            .with_limits(limits.clone())
            .explore(prep.seeds.clone(), &Predicate::Any);
        assert!(
            reference.exhausted,
            "{}: equivalence needs a complete search ({} states)",
            w.name, reference.states_explored
        );

        for (policy, spill) in policies() {
            let mut policy_limits = limits.clone();
            policy_limits.policy = policy;
            policy_limits.max_frontier_bytes = spill;
            let label = format!("{} @{breakpoint} {policy:?} spill={spill:?}", w.name);

            let sequential = Explorer::new(&w.program, &w.detectors)
                .with_limits(policy_limits.clone())
                .explore(prep.seeds.clone(), &Predicate::Any);
            assert!(sequential.exhausted, "{label}: must exhaust");
            assert_eq!(
                sequential.states_explored, reference.states_explored,
                "{label}: states"
            );
            assert_eq!(
                sequential.duplicate_hits, reference.duplicate_hits,
                "{label}: duplicates"
            );
            assert_eq!(
                sequential.terminals, reference.terminals,
                "{label}: outcomes"
            );
            assert_eq!(
                solution_digests(&sequential),
                solution_digests(&reference),
                "{label}: solution sets"
            );
            // A tiny search can fit inside the spill window's 4 KiB floor;
            // only demand actual spilling when the unbounded run's peak
            // exceeded it.
            if spill.is_some() && reference.peak_frontier_bytes > 8 * 1024 {
                assert!(sequential.spilled_states > 0, "{label}: must have spilled");
            }

            for &workers in worker_counts {
                let parallel = ParallelExplorer::new(&w.program, &w.detectors)
                    .with_limits(policy_limits.clone())
                    .with_workers(workers)
                    .explore(prep.seeds.clone(), &Predicate::Any);
                assert!(parallel.exhausted, "{label} x{workers}: must exhaust");
                assert_eq!(
                    parallel.states_explored, reference.states_explored,
                    "{label} x{workers}: states"
                );
                assert_eq!(
                    parallel.terminals, reference.terminals,
                    "{label} x{workers}: outcomes"
                );
                assert_eq!(
                    solution_digests(&parallel),
                    solution_digests(&reference),
                    "{label} x{workers}: solution sets"
                );
            }
        }

        // Iterative deepening re-expands shallow states per round, so only
        // its terminal picture (counts + solution set) must agree.
        let mut idd_limits = limits.clone();
        idd_limits.policy = FrontierPolicy::IterativeDeepening {
            initial_depth: 32,
            depth_step: 32,
        };
        for &workers in std::iter::once(&1usize).chain(worker_counts) {
            let idd = ParallelExplorer::new(&w.program, &w.detectors)
                .with_limits(idd_limits.clone())
                .with_workers(workers)
                .explore(prep.seeds.clone(), &Predicate::Any);
            let label = format!("{} @{breakpoint} iddfs x{workers}", w.name);
            assert!(idd.exhausted, "{label}: must exhaust");
            assert_eq!(idd.terminals, reference.terminals, "{label}: outcomes");
            assert_eq!(
                solution_digests(&idd),
                solution_digests(&reference),
                "{label}: solution sets"
            );
            assert!(
                idd.states_explored >= reference.states_explored,
                "{label}: rounds re-expand shallow states"
            );
        }
        let idd_seq = Explorer::new(&w.program, &w.detectors)
            .with_limits(idd_limits)
            .explore(prep.seeds.clone(), &Predicate::Any);
        assert!(idd_seq.exhausted);
        assert_eq!(idd_seq.terminals, reference.terminals);
        assert_eq!(solution_digests(&idd_seq), solution_digests(&reference));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Factorial, random loop injection point and input: every policy,
        /// sequentially and at 2/8 workers.
        #[test]
        fn factorial_policies_agree_when_exhausted(
            n in 2i64..6,
            bp_choice in 0usize..4,
        ) {
            // Injection points inside the loop: setgt(4), mult(6), subi(7),
            // print(10).
            let breakpoints = [(4usize, 3u8), (6, 3), (7, 3), (10, 2)];
            let (bp, reg) = breakpoints[bp_choice];
            let w = symplfied::apps::factorial().with_input(vec![n]);
            let limits = SearchLimits {
                exec: ExecLimits::with_max_steps(500),
                max_states: 1_000_000,
                max_solutions: usize::MAX,
                max_time: None,
                ..SearchLimits::default()
            };
            assert_policies_agree(&w, bp, Reg::r(reg), &limits, &[2, 8]);
        }
    }

    #[test]
    fn tcas_policies_agree_when_exhausted() {
        // The same data-register point the parallel-equivalence suite pins
        // (`err` in $8 at address 20), across every policy at 2/8 workers.
        let w = symplfied::apps::tcas();
        let limits = SearchLimits {
            exec: ExecLimits::with_max_steps(w.max_steps),
            max_states: 60_000,
            max_solutions: usize::MAX,
            max_time: None,
            ..SearchLimits::default()
        };
        assert_policies_agree(&w, 20, Reg::r(8), &limits, &[2, 8]);
    }
}

// ---------------------------------------------------------------------
// Disk-spilling acceptance: a tcas exhaustive search whose in-RAM
// frontier budget sits well below the unbounded run's peak footprint must
// complete by spilling and reproduce the unbounded run's outcome counts
// and canonical solution set exactly — sequentially and at 2 workers.
// ---------------------------------------------------------------------

mod spill_smoke {
    use super::*;
    use symplfied::check::{Explorer, ParallelExplorer, SearchReport};
    use symplfied::machine::Fingerprint;

    fn solution_digests(report: &SearchReport) -> Vec<Fingerprint> {
        let mut digests: Vec<Fingerprint> = report
            .solutions
            .iter()
            .map(|s| s.state.fingerprint())
            .collect();
        digests.sort_unstable();
        digests
    }

    #[test]
    fn tcas_exhaustive_completes_below_its_peak_frontier() {
        let w = symplfied::apps::tcas();
        let limits = SearchLimits {
            exec: ExecLimits::with_max_steps(w.max_steps),
            max_states: 60_000,
            max_solutions: usize::MAX,
            max_time: None,
            ..SearchLimits::default()
        };
        let point = InjectionPoint::new(20, InjectTarget::Register(Reg::r(8)));
        let prep = prepare(&w.program, &w.detectors, &w.input, &point, &limits.exec);
        assert!(prep.activated);

        // The unbounded reference run, and its peak in-RAM footprint.
        let unbounded = Explorer::new(&w.program, &w.detectors)
            .with_limits(limits.clone())
            .explore(prep.seeds.clone(), &Predicate::Any);
        assert!(unbounded.exhausted, "need a complete reference search");
        assert!(
            unbounded.peak_frontier_bytes > 16 * 1024,
            "the tcas frontier must be big enough for the budget to bite \
             (peak {} bytes)",
            unbounded.peak_frontier_bytes
        );
        assert_eq!(unbounded.spilled_states, 0);

        // A budget well below the observed peak forces spilling.
        let mut tight = limits.clone();
        tight.max_frontier_bytes = Some(unbounded.peak_frontier_bytes / 4);

        let spilling = Explorer::new(&w.program, &w.detectors)
            .with_limits(tight.clone())
            .explore(prep.seeds.clone(), &Predicate::Any);
        assert!(spilling.exhausted, "the spilling search must complete");
        assert!(spilling.spilled_states > 0, "the budget must have bitten");
        assert!(
            spilling.peak_frontier_bytes < unbounded.peak_frontier_bytes,
            "spilling must hold the RAM window below the unbounded peak \
             ({} vs {})",
            spilling.peak_frontier_bytes,
            unbounded.peak_frontier_bytes
        );
        assert_eq!(spilling.states_explored, unbounded.states_explored);
        assert_eq!(spilling.duplicate_hits, unbounded.duplicate_hits);
        assert_eq!(spilling.terminals, unbounded.terminals);
        assert_eq!(solution_digests(&spilling), solution_digests(&unbounded));

        // And at 2 workers, with each worker budgeted half the window.
        let parallel = ParallelExplorer::new(&w.program, &w.detectors)
            .with_limits(tight)
            .with_workers(2)
            .explore(prep.seeds.clone(), &Predicate::Any);
        assert!(parallel.exhausted);
        assert_eq!(parallel.states_explored, unbounded.states_explored);
        assert_eq!(parallel.terminals, unbounded.terminals);
        assert_eq!(solution_digests(&parallel), solution_digests(&unbounded));
    }
}

// ---------------------------------------------------------------------
// Decoded-IR equivalence: lowering a program to the dense DecodedOp array
// (ISSUE 6) must be semantics-preserving. The fast dispatcher
// (`MachineState::step_into` over `Program::decoded()`) is differentially
// tested against the AST reference interpreter (`MachineState::step`) on
// random programs and randomly mutated start states: identical successor
// sets (full state equality, which subsumes per-step outcome counts),
// identical fingerprints, in identical order. The fused concrete runner is
// checked the same way against a chain of single AST steps.
// ---------------------------------------------------------------------

mod decoded_equivalence {
    use super::state_ops::{self, Op};
    use super::*;
    use std::collections::BTreeMap;
    use symplfied::asm::{BinOp, Instr, Program};
    use symplfied::detect::Detector;
    use symplfied::machine::{run_concrete, SuccessorBuf};

    fn reg_strategy() -> impl Strategy<Value = Reg> {
        (0u8..8).prop_map(Reg::r)
    }

    fn operand_strategy() -> impl Strategy<Value = Operand> {
        prop_oneof![
            reg_strategy().prop_map(Operand::Reg),
            (-9i64..=9).prop_map(Operand::Imm),
        ]
    }

    fn binop_strategy() -> impl Strategy<Value = BinOp> {
        prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Div),
            Just(BinOp::Rem),
            Just(BinOp::And),
            Just(BinOp::Or),
            Just(BinOp::Xor),
            Just(BinOp::Sll),
            Just(BinOp::Srl),
        ]
    }

    fn cmp_strategy() -> impl Strategy<Value = Cmp> {
        prop_oneof![
            Just(Cmp::Eq),
            Just(Cmp::Ne),
            Just(Cmp::Gt),
            Just(Cmp::Lt),
            Just(Cmp::Ge),
            Just(Cmp::Le),
        ]
    }

    /// One instruction with all code targets inside `0..len`, weighted so
    /// runs mix arithmetic, forking compares, memory traffic, erroneous
    /// indirect jumps, detector checks, and adjacent fusable pairs.
    fn instr_strategy(len: usize) -> impl Strategy<Value = Instr> {
        prop_oneof![
            4 => (binop_strategy(), reg_strategy(), reg_strategy(), operand_strategy())
                .prop_map(|(op, rd, rs, src)| Instr::Bin { op, rd, rs, src }),
            2 => (reg_strategy(), operand_strategy())
                .prop_map(|(rd, src)| Instr::Mov { rd, src }),
            3 => (cmp_strategy(), reg_strategy(), reg_strategy(), operand_strategy())
                .prop_map(|(cmp, rd, rs, src)| Instr::Set { cmp, rd, rs, src }),
            3 => (cmp_strategy(), reg_strategy(), operand_strategy(), 0..len)
                .prop_map(|(cmp, rs, src, target)| Instr::Branch { cmp, rs, src, target }),
            1 => (0..len).prop_map(|target| Instr::Jmp { target }),
            1 => (0..len).prop_map(|target| Instr::Jal { target }),
            1 => reg_strategy().prop_map(|rs| Instr::Jr { rs }),
            2 => (reg_strategy(), reg_strategy(), (0i64..=5).prop_map(|w| w * 8))
                .prop_map(|(rt, rs, offset)| Instr::Load { rt, rs, offset }),
            2 => (reg_strategy(), reg_strategy(), (0i64..=5).prop_map(|w| w * 8))
                .prop_map(|(rt, rs, offset)| Instr::Store { rt, rs, offset }),
            1 => reg_strategy().prop_map(|rd| Instr::Read { rd }),
            1 => reg_strategy().prop_map(|rs| Instr::Print { rs }),
            1 => prop_oneof![Just("a"), Just("bb")]
                .prop_map(|text| Instr::PrintS { text: text.into() }),
            1 => (1u32..=2).prop_map(|id| Instr::Check { id }),
            1 => Just(Instr::Nop),
            1 => Just(Instr::Halt),
        ]
    }

    fn program_strategy() -> impl Strategy<Value = Program> {
        (4usize..=16)
            .prop_flat_map(|len| prop::collection::vec(instr_strategy(len), len..len + 1))
            .prop_map(|instrs| {
                Program::new(instrs, BTreeMap::new())
                    .expect("non-empty, every static target in range")
            })
    }

    /// Detectors for the `check` instructions the generator emits (ids 1
    /// and 2), so `step_check`'s detected/ok fork is exercised.
    fn detectors() -> DetectorSet {
        let mut set = DetectorSet::new();
        set.insert(Detector::parse("det(1, $(2), >=, (3))").unwrap());
        set.insert(Detector::parse("det(2, $(3), ==, ($1))").unwrap());
        set
    }

    /// Start states: a fresh machine with the given input, mutated by a
    /// random `state_ops` sequence (shared with the digest/codec suites),
    /// with the status forced back to `Running` and the pc anywhere in
    /// `0..=len` (one past the end exercises the illegal-fetch path).
    fn start_states(input: &[i64], ops: &[Op], pc: usize) -> Vec<MachineState> {
        let mut pool = state_ops::run_ops(input, ops);
        for state in &mut pool {
            state.set_status(Status::Running);
            state.set_pc(pc);
        }
        pool
    }

    /// One differential step: `step_into` must produce exactly the
    /// successor vector `step` produces — same states, same order, same
    /// fingerprints.
    fn assert_step_matches(
        state: &MachineState,
        program: &Program,
        dets: &DetectorSet,
        limits: &ExecLimits,
        buf: &mut SuccessorBuf,
    ) -> Vec<MachineState> {
        let reference = state.step(program, dets, limits);
        buf.clear();
        state
            .clone()
            .step_into(program.decoded(), dets, limits, buf);
        let fast: Vec<MachineState> = buf.drain().collect();
        assert_eq!(
            reference,
            fast,
            "decoded dispatch diverged from the AST interpreter at pc {}",
            state.pc()
        );
        for (r, f) in reference.iter().zip(&fast) {
            assert_eq!(r.fingerprint(), f.fingerprint(), "fingerprint divergence");
        }
        reference
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Breadth-first differential execution: every expansion of every
        /// reachable state (capped) goes through both interpreters and
        /// must agree exactly.
        #[test]
        fn successors_match_ast_interpreter(
            program in program_strategy(),
            ops in prop::collection::vec(state_ops::op_strategy(), 0..12),
            input in prop::collection::vec(-6i64..=6, 0..4),
            pc_seed in 0usize..=16,
            track_constraints in any::<bool>(),
        ) {
            let dets = detectors();
            let mut limits = ExecLimits::with_max_steps(40);
            limits.track_constraints = track_constraints;
            let pc = pc_seed.min(program.instrs().len());
            let mut frontier = start_states(&input, &ops, pc);
            let mut buf = SuccessorBuf::new();
            let mut expansions = 0usize;
            while let Some(state) = frontier.pop() {
                let succ = assert_step_matches(&state, &program, &dets, &limits, &mut buf);
                expansions += 1;
                if expansions >= 300 {
                    break;
                }
                frontier.extend(succ);
            }
        }

        /// The fused concrete runner against a chain of single AST steps:
        /// whenever the AST interpreter runs a start state to a terminal
        /// deterministically (one successor per step), `run_concrete` must
        /// reach the byte-identical terminal state.
        #[test]
        fn concrete_runner_matches_ast_chain(
            program in program_strategy(),
            input in prop::collection::vec(-6i64..=6, 0..4),
        ) {
            let dets = detectors();
            let limits = ExecLimits::with_max_steps(60);
            let mut reference = MachineState::with_input(input.clone());
            let mut deterministic = true;
            while !reference.status().is_terminal() && reference.steps() < limits.max_steps {
                let mut succ = reference.step(&program, &dets, &limits);
                if succ.len() != 1 {
                    deterministic = false;
                    break;
                }
                reference = succ.pop().expect("len checked");
            }
            if deterministic {
                if !reference.status().is_terminal() {
                    // The AST chain stopped at the watchdog bound without a
                    // terminal status; the runner marks that state TimedOut.
                    reference.set_status(Status::TimedOut);
                }
                let mut fast = MachineState::with_input(input);
                run_concrete(&mut fast, &program, &dets, &limits)
                    .expect("a deterministic AST chain never hits a symbolic value");
                prop_assert_eq!(&reference, &fast);
                prop_assert_eq!(reference.fingerprint(), fast.fingerprint());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Cross-campaign memoization: a memoized campaign must be outcome-
// indistinguishable from a memo-off run at every worker count — one
// shared store serving across reruns and pool widths — and the SYMO
// store file must round-trip exactly, drop a crash-truncated tail
// without losing the intact prefix, refuse corruption, and refuse a
// store keyed to a different program (the incremental-recheck contract).
// ---------------------------------------------------------------------

mod memo_equivalence {
    use super::state_ops::{op_strategy, run_ops};
    use super::*;
    use symplfied::apps::Workload;
    use symplfied::check::{MemoError, MemoStore, OutcomeCounts, Solution, SubtreeSummary};
    use symplfied::cluster::{
        memo_preserves_outcome, run_cluster, run_cluster_with_memo, ClusterConfig,
    };
    use symplfied::inject::{Campaign, ErrorClass};

    /// A deterministic campaign config the memo exactness gate accepts:
    /// no wall-clock budgets anywhere, sequential point searches.
    fn memo_config(workers: usize, max_steps: u64) -> ClusterConfig {
        let config = ClusterConfig {
            workers,
            tasks: 12,
            search: SearchLimits {
                exec: ExecLimits::with_max_steps(max_steps),
                max_states: 3_000,
                max_solutions: 5,
                max_time: None,
                ..SearchLimits::default()
            },
            task_budget: None,
            point_workers_hint: Some(1),
            ..ClusterConfig::default()
        };
        assert!(memo_preserves_outcome(&config));
        config
    }

    /// Runs the full register-error campaign memo-off and memo-on at 1,
    /// 2, and 8 pool workers against ONE shared store, requiring every
    /// digest to match the memo-off run's and every post-population run
    /// to be served entirely from the store.
    fn assert_memo_equivalent(w: &Workload) {
        let campaign = Campaign::new(&w.program, ErrorClass::RegisterFile);
        let predicate = Predicate::Any;
        let store = MemoStore::for_campaign(&w.program, &w.detectors);
        for workers in [1usize, 2, 8] {
            let config = memo_config(workers, w.max_steps);
            let off = run_cluster(
                &w.program,
                &w.detectors,
                &w.input,
                &campaign,
                &predicate,
                &config,
            );
            let on = run_cluster_with_memo(
                &w.program,
                &w.detectors,
                &w.input,
                &campaign,
                &predicate,
                &config,
                Some(&store),
            );
            assert_eq!(
                off.outcome_digest(),
                on.outcome_digest(),
                "{} x{workers}: memoized digest must match memo-off",
                w.name
            );
            if workers > 1 {
                // The first pass populated the store; the pool width is
                // not part of a sequential point search's identity, so
                // every later pass is served whole.
                assert!(on.memo_hits() > 0, "{} x{workers}: warm", w.name);
                assert_eq!(
                    on.memo_states_skipped(),
                    on.states_explored(),
                    "{} x{workers}: fully served",
                    w.name
                );
            }
        }
        assert!(!store.is_empty(), "{}: store was populated", w.name);
    }

    #[test]
    fn tcas_memoized_campaign_matches_memo_off() {
        assert_memo_equivalent(&symplfied::apps::tcas());
    }

    #[test]
    fn replace_memoized_campaign_matches_memo_off() {
        assert_memo_equivalent(&symplfied::apps::replace());
    }

    /// An arbitrary-ish summary built from generated words and machine
    /// states (the checkpoint round-trip idiom).
    fn summary_from(words: &[u64], states: Vec<MachineState>) -> SubtreeSummary {
        let w = |i: usize| words[i % words.len()] as usize;
        SubtreeSummary {
            states_explored: w(0),
            duplicate_hits: w(1),
            terminals: OutcomeCounts {
                halted: w(2),
                crashed: w(3),
                hung: w(4),
                detected: w(5),
            },
            solutions: states
                .into_iter()
                .enumerate()
                .map(|(i, state)| Solution {
                    state,
                    trace: vec![i, 1],
                })
                .collect(),
            max_depth: words[6 % words.len()],
            peak_frontier_len: w(7),
            peak_frontier_bytes: w(8),
            spilled_states: w(9),
            workers: 1 + w(10) % 8,
            steals: w(11),
            exhausted: w(3) % 2 == 0,
            hit_state_cap: w(4) % 2 == 0,
            hit_solution_cap: w(5) % 3 == 0,
        }
    }

    /// Serializes `n` records under `key` through the real store.
    fn store_bytes(n: usize, key: u128, words: &[u64], states: &[MachineState]) -> Vec<u8> {
        let store = MemoStore::new(key);
        for d in 0..n {
            store.record(
                (d as u128) << 64 | 0xD1_6E57,
                summary_from(words, if d == 0 { states.to_vec() } else { Vec::new() }),
            );
        }
        store.to_bytes()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn symo_files_roundtrip_with_full_eq(
            ops in prop::collection::vec(op_strategy(), 1..20),
            words in prop::collection::vec(0u64..5_000_000, 12..13),
            records in 1usize..6,
        ) {
            let states = run_ops(&[3, -1], &ops);
            let key = u128::from(words[0]) << 64 | u128::from(words[1]);
            let bytes = store_bytes(records, key, &words, &states);
            let (loaded, truncated) =
                MemoStore::parse(&bytes, Some(key)).expect("intact stores parse");
            prop_assert!(!truncated);
            prop_assert_eq!(loaded.key(), key);
            prop_assert_eq!(loaded.len(), records);
            // Deterministic serialization: equal contents, equal bytes.
            prop_assert_eq!(bytes, loaded.to_bytes());
        }

        #[test]
        fn truncated_symo_tails_keep_the_intact_prefix(
            words in prop::collection::vec(0u64..5_000_000, 12..13),
            records in 2usize..6,
            cut in 1usize..200,
        ) {
            let bytes = store_bytes(records, 7, &words, &[]);
            // Cut inside the records region (never into the header): a
            // mid-save crash leaves exactly this shape.
            let header_end = store_bytes(0, 7, &words, &[]).len();
            let cut = (bytes.len() - cut.min(bytes.len() - header_end)).max(header_end);
            let (loaded, truncated) =
                MemoStore::parse(&bytes[..cut], Some(7)).expect("truncation is tolerated");
            prop_assert!(loaded.len() < records || !truncated);
            prop_assert!(loaded.len() <= records);
        }

        #[test]
        fn corrupt_symo_records_never_invent_entries(
            words in prop::collection::vec(0u64..5_000_000, 12..13),
            records in 1usize..5,
            flip_at in 0usize..10_000,
            flip_bits in 1u8..=255,
        ) {
            let bytes = store_bytes(records, 11, &words, &[]);
            let mut corrupt = bytes.clone();
            let idx = flip_at % corrupt.len();
            corrupt[idx] ^= flip_bits;
            // A flipped byte either fails the parse outright, or parses
            // to at most the written entries — and any record it does
            // keep must serve a summary that was actually recorded (its
            // per-record FNV-128 digest still matched).
            if let Ok((loaded, _)) = MemoStore::parse(&corrupt, Some(11)) {
                prop_assert!(loaded.len() <= records);
            }
        }

        #[test]
        fn stale_symo_keys_are_refused(
            words in prop::collection::vec(0u64..5_000_000, 12..13),
            key in 0u64..1_000,
            other in 1u64..1_000,
        ) {
            let key = u128::from(key);
            let expected = key + u128::from(other); // always != key
            let bytes = store_bytes(2, key, &words, &[]);
            match MemoStore::parse(&bytes, Some(expected)) {
                Err(MemoError::StaleKey { expected: e, found }) => {
                    prop_assert_eq!(e, expected);
                    prop_assert_eq!(found, key);
                }
                other => prop_assert!(false, "expected StaleKey, got {:?}", other.map(|_| ())),
            }
        }
    }
}

/// The campaign service's fairness contract: the weighted round-robin
/// [`symplfied::wire::FairScheduler`] serves continuously backlogged
/// clients proportionally to their declared priorities, never drifting
/// more than one refill round apart, and a client with a small queue is
/// fully served within the interleaving bound — it cannot starve behind
/// a large tenant at equal priority.
mod service_fairness {
    use proptest::prelude::*;
    use symplfied::wire::FairScheduler;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// With every client permanently backlogged, the served counts
        /// per unit priority stay within one round of each other at
        /// *every* prefix of the schedule — the documented fairness
        /// bound of `WorkerServer::serve_with`.
        #[test]
        fn backlogged_clients_stay_within_one_round_per_unit_priority(
            priorities in prop::collection::vec(1u64..=4, 2..6),
            picks in 16usize..200,
        ) {
            let mut sched = FairScheduler::new();
            let clients: Vec<(u64, bool)> =
                priorities.iter().map(|&p| (p, true)).collect();
            let mut served = vec![0u64; clients.len()];
            for _ in 0..picks {
                let i = sched.pick(&clients).expect("backlogged clients always schedule");
                served[i] += 1;
            }
            for (a, &pa) in priorities.iter().enumerate() {
                for (b, &pb) in priorities.iter().enumerate() {
                    let ra = served[a] as f64 / pa as f64;
                    let rb = served[b] as f64 / pb as f64;
                    prop_assert!(
                        (ra - rb).abs() <= 1.0 + f64::EPSILON,
                        "clients {a} (prio {pa}, served {}) and {b} (prio {pb}, served {}) \
                         drifted more than one round apart",
                        served[a], served[b],
                    );
                }
            }
        }

        /// Two equal-priority clients with unequal task counts: the
        /// small client's whole queue is dispatched within the
        /// interleaving bound (2·m + 1 picks for m tasks), so a quick
        /// campaign never waits for a big one — the starvation
        /// regression the service integration tests pin end-to-end.
        #[test]
        fn small_queues_drain_within_the_interleaving_bound(
            small in 1usize..8,
            extra in 1usize..24,
        ) {
            let big = small + extra;
            let mut sched = FairScheduler::new();
            let mut left = [big, small];
            let mut position = 0usize;
            let mut small_done_at = None;
            while left.iter().any(|&n| n > 0) {
                let clients = [(1, left[0] > 0), (1, left[1] > 0)];
                let i = sched.pick(&clients).expect("work remains");
                prop_assert!(left[i] > 0, "an idle client was scheduled");
                left[i] -= 1;
                position += 1;
                if i == 1 && left[1] == 0 {
                    small_done_at = Some(position);
                }
            }
            let done = small_done_at.expect("the small client drained");
            prop_assert!(
                done <= 2 * small + 1,
                "the small client's {small} task(s) took {done} pick(s) to dispatch \
                 — starved behind the {big}-task client"
            );
            prop_assert_eq!(position, small + big, "every task dispatched exactly once");
        }
    }
}
