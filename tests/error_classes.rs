//! Table-1 error classes end-to-end: every class enumerates points,
//! activates, and produces sound seed states on real workloads.

use symplfied::check::{Predicate, SearchLimits};
use symplfied::inject::{
    enumerate_points, prepare, run_point, Campaign, ComputationError, ErrorClass,
};
use symplfied::machine::ExecLimits;
#[allow(unused_imports)]
use symplfied::prelude::*;

#[test]
fn every_class_enumerates_points_on_tcas() {
    let w = symplfied::apps::tcas();
    for class in ErrorClass::all() {
        let points = enumerate_points(&w.program, &class);
        let expects_points = !matches!(
            class,
            ErrorClass::Computation(ComputationError::DecodeNopToTargeted)
        );
        assert_eq!(
            !points.is_empty(),
            expects_points,
            "{class}: tcas has no nop instructions, everything else applies"
        );
    }
}

#[test]
fn register_class_seeds_have_exactly_one_err() {
    let w = symplfied::apps::tcas();
    let exec = ExecLimits::with_max_steps(w.max_steps);
    let points = enumerate_points(&w.program, &ErrorClass::RegisterFile);
    let mut activated = 0;
    for point in points.iter().take(30) {
        let prep = prepare(&w.program, &w.detectors, &w.input, point, &exec);
        if !prep.activated {
            continue;
        }
        activated += 1;
        for seed in &prep.seeds {
            assert_eq!(
                seed.err_locations().len(),
                1,
                "single-error model: one err per execution ({point})"
            );
            assert_eq!(seed.pc(), point.breakpoint);
        }
    }
    assert!(activated > 10, "most early tcas points activate");
}

#[test]
fn memory_class_corrupts_the_loaded_word() {
    let w = symplfied::apps::tcas();
    let exec = ExecLimits::with_max_steps(w.max_steps);
    let points = enumerate_points(&w.program, &ErrorClass::Memory);
    assert!(!points.is_empty(), "tcas is full of global loads");
    let mut hit = false;
    for point in &points {
        let prep = prepare(&w.program, &w.detectors, &w.input, point, &exec);
        if prep.activated && !prep.seeds.is_empty() {
            hit = true;
            let seed = &prep.seeds[0];
            assert!(
                seed.err_locations().iter().any(|l| !l.is_reg()),
                "memory class must plant err in memory"
            );
        }
    }
    assert!(hit);
}

#[test]
fn memory_errors_propagate_to_wrong_advisories() {
    // Corrupting Up_Separation where ALIM is compared can flip advisories.
    let w = symplfied::apps::tcas();
    let limits = SearchLimits {
        exec: ExecLimits::with_max_steps(w.max_steps),
        max_states: 300_000,
        max_solutions: 10,
        max_time: None,
        ..SearchLimits::default()
    };
    let campaign = Campaign::new(&w.program, ErrorClass::Memory);
    let mut findings = 0;
    for point in &campaign.points {
        let outcome = run_point(
            &w.program,
            &w.detectors,
            &w.input,
            point,
            &Predicate::WrongOutput { expected: vec![1] },
            &limits,
        );
        findings += outcome.report.solutions.len();
        if findings > 0 {
            break;
        }
    }
    assert!(findings > 0, "some memory error must corrupt the advisory");
}

#[test]
fn functional_unit_class_corrupts_destinations_after_execution() {
    let w = symplfied::apps::sum();
    let exec = ExecLimits::with_max_steps(w.max_steps);
    let points = enumerate_points(
        &w.program,
        &ErrorClass::Computation(ComputationError::FunctionalUnit),
    );
    let prep = prepare(&w.program, &w.detectors, &w.input, &points[0], &exec);
    assert!(prep.activated);
    let seed = &prep.seeds[0];
    assert_eq!(seed.pc(), points[0].breakpoint + 1, "instruction executed");
    assert_eq!(seed.err_locations().len(), 1);
}

#[test]
fn fetch_class_finds_control_flow_failures() {
    let w = symplfied::apps::sum();
    let limits = SearchLimits {
        exec: ExecLimits::with_max_steps(2_000),
        max_states: 100_000,
        max_solutions: 5,
        max_time: None,
        ..SearchLimits::default()
    };
    let points = enumerate_points(
        &w.program,
        &ErrorClass::Computation(ComputationError::Fetch),
    );
    // A fetch error somewhere must be able to corrupt the printed sum.
    let mut wrong = 0;
    for point in &points {
        let outcome = run_point(
            &w.program,
            &w.detectors,
            &w.input,
            point,
            &Predicate::WrongOutput { expected: vec![55] },
            &limits,
        );
        wrong += outcome.report.solutions.len();
    }
    assert!(wrong > 0, "PC redirection must be able to skip loop work");
}

#[test]
fn decode_changed_target_affects_two_registers() {
    let w = symplfied::apps::sum();
    let exec = ExecLimits::with_max_steps(w.max_steps);
    let points = enumerate_points(
        &w.program,
        &ErrorClass::Computation(ComputationError::DecodeChangedTarget),
    );
    assert!(!points.is_empty());
    let prep = prepare(&w.program, &w.detectors, &w.input, &points[0], &exec);
    assert!(prep.activated);
    assert_eq!(
        prep.seeds[0].err_locations().len(),
        2,
        "err in the original and the new target (Table 1)"
    );
}

#[test]
fn decode_targeted_to_nop_skips_the_write() {
    let w = symplfied::apps::sum();
    let exec = ExecLimits::with_max_steps(w.max_steps);
    let points = enumerate_points(
        &w.program,
        &ErrorClass::Computation(ComputationError::DecodeTargetedToNop),
    );
    let prep = prepare(&w.program, &w.detectors, &w.input, &points[0], &exec);
    assert!(prep.activated);
    let seed = &prep.seeds[0];
    assert_eq!(seed.pc(), points[0].breakpoint + 1, "squashed to nop");
    assert_eq!(seed.err_locations().len(), 1, "stale destination is err");
}

#[test]
fn bus_source_class_equals_register_file_manifestation() {
    // Table 1: bus errors manifest as err in source registers — the same
    // manifestation the register-file class enumerates.
    let w = symplfied::apps::factorial();
    let a = enumerate_points(&w.program, &ErrorClass::RegisterFile);
    let b = enumerate_points(
        &w.program,
        &ErrorClass::Computation(ComputationError::BusSource),
    );
    assert_eq!(a, b);
}
