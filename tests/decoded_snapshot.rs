//! Golden snapshots of the decoded IR: the pretty-printed
//! [`symplfied::asm::DecodedProgram`] listing for every bundled workload,
//! pinned against the current lowering.
//!
//! Any change to the lowering — operand splitting, target resolution,
//! string pooling, or the superinstruction fusion rules — shows up here as
//! a readable diff of the affected listing, so reviewers see exactly which
//! ops moved rather than a pass/fail bit. CI runs this in release mode on
//! every push.
//!
//! To regenerate after an *intentional* lowering change:
//!
//! ```text
//! DECODED_GOLDEN_REGEN=1 cargo test --test decoded_snapshot
//! ```

use std::path::PathBuf;

use sympl_apps::all_workloads;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/decoded_snapshot")
}

/// Compares `listing` against the named golden file — or rewrites it under
/// `DECODED_GOLDEN_REGEN=1`.
fn check_golden(name: &str, listing: &str) {
    let path = golden_dir().join(format!("{name}.txt"));
    if std::env::var_os("DECODED_GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/decoded_snapshot");
        std::fs::write(&path, listing).expect("write golden listing");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden listing {}: {e}", path.display()));
    assert_eq!(
        golden, listing,
        "{name}: decoded listing changed — if the lowering change is \
         intentional, regenerate with DECODED_GOLDEN_REGEN=1"
    );
}

#[test]
fn decoded_listings_are_pinned_for_every_workload() {
    let workloads = all_workloads();
    assert!(
        workloads.len() >= 8,
        "bundled workload set shrank — update the snapshot suite"
    );
    for w in &workloads {
        let decoded = w.program.decoded();
        // The listing is the snapshot: it embeds the op count, fusion
        // count, string pool, and every decoded op with fusion markers.
        check_golden(w.name, &decoded.listing());
        // Sanity-pin the structural invariant independently of the text:
        // lowering is 1:1 with the architectural instruction sequence.
        assert_eq!(decoded.len(), w.program.instrs().len());
    }
}

#[test]
fn listings_expose_fused_superinstructions() {
    // At least one bundled workload must exercise each fusion kind, so the
    // snapshots cover the superinstruction printer — and so a regression
    // that stops fusion firing entirely cannot slip through as a set of
    // plausible-looking fusion-free goldens.
    let mut kinds = std::collections::BTreeSet::new();
    for w in all_workloads() {
        let decoded = w.program.decoded();
        for pc in 0..decoded.len() {
            if let Some(fused) = decoded.fused_at(pc) {
                kinds.insert(fused.kind());
            }
        }
    }
    for kind in ["cmp-branch", "load-op", "op-store"] {
        assert!(
            kinds.contains(kind),
            "no bundled workload fuses a `{kind}` pair; goldens would not cover it"
        );
    }
}
