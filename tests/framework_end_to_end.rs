//! End-to-end Framework runs over the auxiliary workloads, the detector
//! workflow of §4.2, and the constraint-solver ablation (DESIGN.md ⚗1).

use symplfied::check::{search_many, Predicate, SearchLimits};
use symplfied::inject::{prepare, ErrorClass, InjectTarget, InjectionPoint};
use symplfied::machine::ExecLimits;
use symplfied::prelude::*;

#[test]
fn framework_sum_enumeration_is_complete_and_real() {
    let w = symplfied::apps::sum();
    let fw = Framework::new(w.program.clone())
        .with_input(w.input.clone())
        .with_limits(SearchLimits {
            exec: ExecLimits::with_max_steps(w.max_steps),
            max_solutions: 50,
            ..SearchLimits::default()
        });
    assert_eq!(fw.golden_output(), vec![55]);
    let verdict = fw.enumerate_undetected(ErrorClass::RegisterFile);
    assert!(!verdict.is_resilient());
    // Every finding halted normally with a corrupted output.
    for f in &verdict.findings {
        assert_eq!(f.solution.state.status(), &Status::Halted);
        assert!(
            f.solution.state.output_contains_err() || f.solution.state.output_ints() != vec![55]
        );
    }
    assert!(verdict.points_activated > 0);
    assert!(verdict.states_explored > verdict.points_examined);
}

#[test]
fn bubble_sort_wrong_order_findings() {
    // Errors in the compare register can silently produce unsorted output.
    let w = symplfied::apps::bubble_sort();
    let golden = symplfied::apps::golden(&w).output_ints();
    assert_eq!(golden, vec![10, 20, 30, 40, 50]);
    let fw = Framework::new(w.program.clone())
        .with_input(w.input.clone())
        .with_limits(SearchLimits {
            exec: ExecLimits::with_max_steps(w.max_steps),
            max_solutions: 5,
            max_states: 200_000,
            max_time: None,
            ..SearchLimits::default()
        });
    let verdict = fw.enumerate_matching(
        ErrorClass::RegisterFile,
        &Predicate::custom(move |s| {
            s.status() == &Status::Halted
                && !s.output_contains_err()
                && s.output_ints().len() == 5
                && s.output_ints() != vec![10, 20, 30, 40, 50]
        }),
    );
    assert!(
        !verdict.findings.is_empty(),
        "a corrupted comparison must be able to mis-sort silently"
    );
    for f in &verdict.findings {
        // The output is silently wrong: an out-of-order pair or a
        // corrupted multiset (e.g. a duplicated element from a bad swap).
        let out = f.solution.state.output_ints();
        assert_ne!(out, golden, "finding must differ from the golden output");
    }
}

#[test]
fn detector_workflow_narrows_escaping_errors() {
    // §4.2's development loop: compare the escaping-error sets of the
    // unprotected and protected factorial under the same injection.
    let plain = symplfied::apps::factorial();
    let protected = symplfied::apps::factorial_with_detectors();
    let limits = SearchLimits {
        exec: ExecLimits::with_max_steps(600),
        max_solutions: 500,
        ..SearchLimits::default()
    };

    let run = |w: &symplfied::apps::Workload, subi: usize| {
        let point = InjectionPoint::new(subi, InjectTarget::Register(Reg::r(3)));
        let prep = prepare(&w.program, &w.detectors, &w.input, &point, &limits.exec);
        search_many(
            &w.program,
            &w.detectors,
            prep.seeds,
            &Predicate::Any,
            &limits,
        )
    };
    let unprotected = run(&plain, 7);
    let with_detectors = run(&protected, 10);

    assert_eq!(unprotected.terminals.detected, 0);
    assert!(with_detectors.terminals.detected > 0, "detectors must fire");
    // The protected program still has escaping wrong outputs (the paper's
    // point: detection is partial and SymPLFIED shows exactly what's left).
    let escaping = |r: &symplfied::check::SearchReport| {
        r.solutions
            .iter()
            .filter(|s| s.state.status() == &Status::Halted && s.state.output_ints() != vec![120])
            .count()
    };
    assert!(escaping(&with_detectors) > 0);
    assert!(escaping(&with_detectors) <= escaping(&unprotected));
}

#[test]
fn ablation_disabling_solver_creates_false_positives() {
    // DESIGN.md ⚗1: without constraint tracking, contradictory paths are
    // not pruned, so the search reports outcomes that cannot occur.
    let program = parse_program(
        "setgt $2, $1, 10\nbeq $2, 0, out\nsetle $3, $1, 10\nbeq $3, 0, out\n\
         mov $4, 999\nprint $4\nout: print $1\nhalt",
    )
    .unwrap();
    let mut seed = MachineState::new();
    seed.set_reg(Reg::r(1), Value::Err);

    let mut with_solver = SearchLimits::with_max_steps(100);
    with_solver.max_solutions = 100;
    let mut without_solver = with_solver.clone();
    without_solver.exec.track_constraints = false;

    let detectors = DetectorSet::new();
    let sound = search_many(
        &program,
        &detectors,
        vec![seed.clone()],
        &Predicate::Any,
        &with_solver,
    );
    let ablated = search_many(
        &program,
        &detectors,
        vec![seed],
        &Predicate::Any,
        &without_solver,
    );

    let prints_999 = |r: &symplfied::check::SearchReport| {
        r.solutions
            .iter()
            .filter(|s| s.state.output_ints().contains(&999))
            .count()
    };
    assert_eq!(
        prints_999(&sound),
        0,
        "($1 > 10) && ($1 <= 10) is infeasible — the solver must prune it"
    );
    assert!(
        prints_999(&ablated) > 0,
        "without the solver the contradictory path survives (false positive)"
    );
    assert!(ablated.states_explored >= sound.states_explored);
}

#[test]
fn query_generator_presets_run_end_to_end() {
    use symplfied::inject::Query;
    let w = symplfied::apps::sum();
    let fw = Framework::new(w.program.clone())
        .with_input(w.input.clone())
        .with_limits(SearchLimits {
            exec: ExecLimits::with_max_steps(w.max_steps),
            ..SearchLimits::default()
        });
    let q = Query::register_errors_in_output();
    let verdict = fw.enumerate_matching(q.class, &q.predicate());
    assert!(!verdict.findings.is_empty());
    // Fetch errors cannot crash `sum` (it has no memory accesses, and PC
    // redirection stays inside valid code), but on bubble-sort a redirected
    // PC reaches loads through uninitialized index registers.
    let q2 = Query::fetch_errors_crashing();
    let verdict_sum = fw.enumerate_matching(q2.class, &q2.predicate());
    assert!(
        verdict_sum.findings.is_empty(),
        "sum has no memory ops: no fetch error can crash it"
    );
    let wb = symplfied::apps::bubble_sort();
    let fwb = Framework::new(wb.program.clone())
        .with_input(wb.input.clone())
        .with_limits(SearchLimits {
            exec: ExecLimits::with_max_steps(wb.max_steps),
            max_solutions: 3,
            ..SearchLimits::default()
        });
    let verdict_bubble = fwb.enumerate_matching(q2.class, &q2.predicate());
    assert!(
        !verdict_bubble.findings.is_empty(),
        "redirected PC in bubble-sort must be able to crash on a load"
    );
}
