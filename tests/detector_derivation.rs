//! End-to-end detector derivation workflow (DESIGN.md "beyond-paper
//! capabilities", the paper's reference [2]): observe training runs,
//! derive range detectors, instrument the program, and measure how the
//! escaping-error set shrinks under the SymPLFIED search.

use symplfied::check::{Predicate, SearchLimits};
use symplfied::inject::{derive_range_detectors, enumerate_points, run_point, ErrorClass};
use symplfied::machine::ExecLimits;
use symplfied::prelude::*;

#[test]
fn derived_detectors_shrink_the_escaping_set() {
    let w = symplfied::apps::sum();
    let golden = symplfied::apps::golden(&w).output_ints();
    let training: Vec<Vec<i64>> = (1..=10).map(|n| vec![n]).collect();

    // Derive range guards for the accumulator and the loop counter at the
    // loop body (addresses 6 `add` and 7 `addi` in sum.sasm).
    let add_addr = 6;
    let derived = derive_range_detectors(
        &w.program,
        &w.detectors,
        &training,
        &[(add_addr, Reg::r(2)), (add_addr + 1, Reg::r(3))],
        50,
        &ExecLimits::with_max_steps(w.max_steps),
    )
    .unwrap();
    assert_eq!(derived.detectors.len(), 4);
    assert_eq!(derived.ranges.len(), 2);
    // The instrumented program still computes the same golden output.
    let wd = symplfied::apps::Workload::new(
        "sum-derived",
        derived.program.clone(),
        derived.detectors.clone(),
        w.input.clone(),
        w.max_steps * 2,
    );
    assert_eq!(symplfied::apps::golden(&wd).output_ints(), golden);

    // Count escaping wrong outputs before and after, over the full
    // register campaign.
    let count_escaping = |program: &Program, detectors: &DetectorSet| -> (usize, usize) {
        let limits = SearchLimits {
            exec: ExecLimits::with_max_steps(3_000),
            max_solutions: 100,
            ..SearchLimits::default()
        };
        let mut escaping = 0;
        let mut detected = 0;
        for point in enumerate_points(program, &ErrorClass::RegisterFile) {
            let out = run_point(
                program,
                detectors,
                &w.input,
                &point,
                &Predicate::Any,
                &limits,
            );
            for sol in out.report.solutions {
                match sol.state.status() {
                    Status::Halted
                        if sol.state.output_contains_err() || sol.state.output_ints() != golden =>
                    {
                        escaping += 1;
                    }
                    Status::Detected(_) => detected += 1,
                    _ => {}
                }
            }
        }
        (escaping, detected)
    };

    let (before_escaping, before_detected) = count_escaping(&w.program, &w.detectors);
    let (after_escaping, after_detected) = count_escaping(&derived.program, &derived.detectors);

    assert_eq!(before_detected, 0, "no detectors in the plain program");
    assert!(after_detected > 0, "derived range checks must fire");
    assert!(
        after_escaping <= before_escaping,
        "derived detectors must not widen the escaping set \
         (before {before_escaping}, after {after_escaping})"
    );
}

#[test]
fn auxiliary_workloads_survive_register_campaigns() {
    // Smoke: every auxiliary workload's register campaign runs to
    // completion and finds at least one output-corrupting error (none of
    // them have detectors).
    for w in [
        symplfied::apps::gcd(),
        symplfied::apps::matmul(),
        symplfied::apps::sum(),
    ] {
        let golden = symplfied::apps::golden(&w).output_ints();
        let limits = SearchLimits {
            exec: ExecLimits::with_max_steps(w.max_steps),
            max_solutions: 3,
            max_states: 100_000,
            max_time: None,
            ..SearchLimits::default()
        };
        let mut found = false;
        for point in enumerate_points(&w.program, &ErrorClass::RegisterFile) {
            let out = run_point(
                &w.program,
                &w.detectors,
                &w.input,
                &point,
                &Predicate::WrongOutput {
                    expected: golden.clone(),
                },
                &limits,
            );
            if out.found_errors() {
                found = true;
                break;
            }
        }
        assert!(found, "workload {} must have corruptible output", w.name);
    }
}
