//! Differential validation of the assembly workloads against native Rust
//! reference models (paper §3.1 "the model must be an accurate
//! representation of the system being modeled" — we check the tcas and
//! replace translations against independent reimplementations over many
//! inputs).

use proptest::prelude::*;
use symplfied::apps::{self, replace_input, tcas_input::TcasInput};

// ---------------------------------------------------------------------
// tcas reference model (Siemens tcas.c semantics)
// ---------------------------------------------------------------------

const OLEV: i64 = 600;
const MAXALTDIFF: i64 = 600;
const MINSEP: i64 = 300;
const NOZCROSS: i64 = 100;
const THRESHOLDS: [i64; 4] = [400, 500, 640, 740];

fn alim(inp: &TcasInput) -> i64 {
    THRESHOLDS[inp.alt_layer_value as usize]
}

fn inhibit_biased_climb(inp: &TcasInput) -> i64 {
    if inp.climb_inhibit != 0 {
        inp.up_separation + NOZCROSS
    } else {
        inp.up_separation
    }
}

fn own_below_threat(inp: &TcasInput) -> bool {
    inp.own_tracked_alt < inp.other_tracked_alt
}

fn own_above_threat(inp: &TcasInput) -> bool {
    inp.other_tracked_alt < inp.own_tracked_alt
}

fn non_crossing_biased_climb(inp: &TcasInput) -> bool {
    let upward_preferred = inhibit_biased_climb(inp) > inp.down_separation;
    if upward_preferred {
        !(own_below_threat(inp) && inp.down_separation >= alim(inp))
    } else {
        own_above_threat(inp) && inp.cur_vertical_sep >= MINSEP && inp.up_separation >= alim(inp)
    }
}

fn non_crossing_biased_descend(inp: &TcasInput) -> bool {
    let upward_preferred = inhibit_biased_climb(inp) > inp.down_separation;
    if upward_preferred {
        own_below_threat(inp) && inp.cur_vertical_sep >= MINSEP && inp.down_separation >= alim(inp)
    } else {
        !own_above_threat(inp) || inp.up_separation >= alim(inp)
    }
}

#[allow(clippy::nonminimal_bool)] // mirrors the tcas.c condition verbatim
fn ref_alt_sep_test(inp: &TcasInput) -> i64 {
    let enabled = inp.high_confidence != 0
        && inp.own_tracked_alt_rate <= OLEV
        && inp.cur_vertical_sep > MAXALTDIFF;
    let tcas_equipped = inp.other_capability == 1;
    let intent_not_known = inp.two_of_three_reports_valid != 0 && inp.other_rac == 0;
    if !(enabled && ((tcas_equipped && intent_not_known) || !tcas_equipped)) {
        return 0;
    }
    let need_up = non_crossing_biased_climb(inp) && own_below_threat(inp);
    let need_down = non_crossing_biased_descend(inp) && own_above_threat(inp);
    match (need_up, need_down) {
        (true, true) | (false, false) => 0,
        (true, false) => 1,
        (false, true) => 2,
    }
}

fn arb_tcas_input() -> impl Strategy<Value = TcasInput> {
    (
        (0i64..1200, 0i64..=1, 0i64..=1, 0i64..1000),
        (0i64..1200, 0i64..1000, 0i64..=3, 0i64..900),
        (0i64..900, 0i64..=2, 0i64..=2, 0i64..=1),
    )
        .prop_map(
            |(
                (cur_vertical_sep, high_confidence, two_valid, own_alt),
                (rate, other_alt, layer, up),
                (down, rac, cap, inhibit),
            )| TcasInput {
                cur_vertical_sep,
                high_confidence,
                two_of_three_reports_valid: two_valid,
                own_tracked_alt: own_alt,
                own_tracked_alt_rate: rate,
                other_tracked_alt: other_alt,
                alt_layer_value: layer,
                up_separation: up,
                down_separation: down,
                other_rac: rac,
                other_capability: cap,
                climb_inhibit: inhibit,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn tcas_assembly_matches_reference(inp in arb_tcas_input()) {
        let w = apps::tcas().with_input(inp.to_stream());
        let state = apps::golden(&w);
        prop_assert_eq!(
            state.output_ints(),
            vec![ref_alt_sep_test(&inp)],
            "input {:?}", inp
        );
    }
}

// ---------------------------------------------------------------------
// replace reference model (the subset semantics of the asm program)
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Pat {
    Lit(char),
    Any,
    Ccl(Vec<char>),
    Nccl(Vec<char>),
}

fn ref_makepat(pattern: &str) -> Vec<Pat> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '?' => {
                out.push(Pat::Any);
                i += 1;
            }
            '[' => {
                i += 1;
                let mut negate = false;
                if i < chars.len() && chars[i] == '^' {
                    negate = true;
                    i += 1;
                }
                let mut set: Vec<char> = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if chars[i] == '-'
                        && !set.is_empty()
                        && i + 1 < chars.len()
                        && chars[i + 1] != ']'
                    {
                        let from = *set.last().unwrap() as u32;
                        let to = chars[i + 1] as u32;
                        for c in (from + 1)..=to {
                            set.push(char::from_u32(c).unwrap());
                        }
                        i += 2;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                if i < chars.len() {
                    i += 1; // skip ']'
                }
                out.push(if negate {
                    Pat::Nccl(set)
                } else {
                    Pat::Ccl(set)
                });
            }
            c => {
                out.push(Pat::Lit(c));
                i += 1;
            }
        }
    }
    out
}

fn ref_amatch(line: &[char], mut i: usize, pat: &[Pat]) -> Option<usize> {
    for p in pat {
        if i >= line.len() {
            return None;
        }
        let c = line[i];
        let ok = match p {
            Pat::Lit(l) => c == *l,
            Pat::Any => true,
            Pat::Ccl(set) => set.contains(&c),
            Pat::Nccl(set) => !set.contains(&c),
        };
        if !ok {
            return None;
        }
        i += 1;
    }
    Some(i)
}

fn ref_replace(pattern: &str, substitution: &str, line: &str) -> String {
    let pat = ref_makepat(pattern);
    let chars: Vec<char> = line.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        match ref_amatch(&chars, i, &pat) {
            Some(end) if end > i => {
                out.push_str(substitution);
                i = end;
            }
            _ => {
                out.push(chars[i]);
                i += 1;
            }
        }
    }
    out
}

fn arb_pattern() -> impl Strategy<Value = String> {
    // Patterns over a small alphabet with literals, '?', and classes.
    prop::collection::vec(
        prop_oneof![
            3 => prop::sample::select(vec!["a", "b", "c", "x", "?"]),
            1 => prop::sample::select(vec!["[a-c]", "[^a]", "[bx]", "[0-9]"]),
        ],
        1..4,
    )
    .prop_map(|parts| parts.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn replace_assembly_matches_reference(
        pattern in arb_pattern(),
        sub in "[A-Z]{0,3}",
        line in "[abcx01]{0,8}",
    ) {
        let w = apps::replace()
            .with_input(replace_input::encode(&pattern, &sub, &line));
        let state = apps::golden(&w);
        prop_assert_eq!(
            replace_input::decode(&state.output_ints()),
            ref_replace(&pattern, &sub, &line),
            "pattern `{}` sub `{}` line `{}`", pattern, sub, line
        );
    }
}

#[test]
fn tcas_reference_agrees_on_named_inputs() {
    use symplfied::apps::tcas_input;
    for (stream, expected) in [
        (tcas_input::upward_advisory(), 1),
        (tcas_input::downward_advisory(), 2),
        (tcas_input::unresolved(), 0),
        (tcas_input::disabled(), 0),
    ] {
        let w = apps::tcas().with_input(stream);
        assert_eq!(apps::golden(&w).output_ints(), vec![expected]);
    }
}
