//! The paper's headline result (§6.2): a transient error in the return
//! address register `$31` inside `Non_Crossing_Biased_Climb` makes tcas
//! print a downward advisory (2) instead of the correct upward advisory
//! (1) — and random concrete injection never finds this, while the
//! symbolic search does.

use symplfied::check::{Predicate, SearchLimits};
use symplfied::inject::{run_point, InjectTarget, InjectionPoint};
use symplfied::machine::ExecLimits;
use symplfied::prelude::*;
use symplfied::ssim;

fn tcas_limits() -> SearchLimits {
    SearchLimits {
        exec: ExecLimits::with_max_steps(5_000),
        max_states: 2_000_000,
        max_solutions: 10,
        max_time: None,
        ..SearchLimits::default()
    }
}

/// The address of the `jr $31` return in `Non_Crossing_Biased_Climb`.
fn ncbc_return(program: &Program) -> usize {
    let epilogue = program
        .label_address("ncbc_done")
        .expect("tcas defines ncbc_done");
    // Epilogue: ld $31, 0($29); addi $29, $29, 24; jr $31.
    let jr = epilogue + 2;
    assert!(
        matches!(program.fetch(jr), Some(Instr::Jr { .. })),
        "epilogue layout changed"
    );
    jr
}

#[test]
fn symbolic_search_finds_the_1_to_2_conversion() {
    let w = sympl_apps::tcas();
    assert_eq!(
        sympl_apps::golden(&w).output_ints(),
        vec![1],
        "the evaluation input must produce the upward advisory"
    );

    let point = InjectionPoint::new(ncbc_return(&w.program), InjectTarget::Register(Reg::r(31)));
    let outcome = run_point(
        &w.program,
        &w.detectors,
        &w.input,
        &point,
        &Predicate::ExactOutput { output: vec![2] },
        &tcas_limits(),
    );
    assert!(outcome.activated, "the NCBC return executes on this input");
    assert!(
        outcome.found_errors(),
        "the corrupted return address must be able to land on the \
         DOWNWARD_RA assignment: {:?}",
        outcome.report
    );

    // The witness trace must pass through the alt_sep = DOWNWARD_RA
    // assignment in alt_sep_test (Figure 4's failure path).
    let downward = w
        .program
        .label_address("ast_downward")
        .expect("tcas defines ast_downward");
    assert!(
        outcome
            .report
            .solutions
            .iter()
            .any(|sol| sol.trace.contains(&downward)),
        "at least one witness lands on the DOWNWARD_RA assignment"
    );
}

#[test]
fn replaying_the_witness_confirms_it_is_real() {
    // §6.2: the paper validated the finding by re-injecting it concretely.
    // The landing address *is* the corrupted register value; replaying it
    // must print 2.
    let w = sympl_apps::tcas();
    let downward = w.program.label_address("ast_downward").unwrap();
    let jr = ncbc_return(&w.program);
    let result = ssim::replay_register_witness(
        &w.program,
        &w.detectors,
        &w.input,
        jr,
        1,
        Reg::r(31),
        downward as i64,
        &ExecLimits::with_max_steps(w.max_steps),
    )
    .expect("the breakpoint is on the golden path");
    assert_eq!(
        result.outcome,
        ssim::ConcreteOutcome::Output(vec![2]),
        "the replayed witness must reproduce the catastrophic advisory"
    );
}

#[test]
fn concrete_extreme_and_random_injection_misses_it() {
    // Table 2: thousands of concrete injections, outcome '2' never appears.
    let w = sympl_apps::tcas();
    let report = ssim::run_campaign(
        &w.program,
        &w.detectors,
        &w.input,
        &ssim::CampaignConfig::default(),
        &ExecLimits::with_max_steps(w.max_steps),
    );
    assert!(report.total_runs() > 1_000, "ran {}", report.total_runs());
    assert!(
        !report.saw_output(&[2]),
        "extreme/random values should not stumble on the exact return \
         address (the paper's 41k injections never did)"
    );
    // The broad shape of Table 2: benign (1) and crash outcomes dominate.
    assert!(report.saw_output(&[1]), "benign runs print the advisory");
    assert!(
        report.count_where(|o| matches!(o, ssim::ConcreteOutcome::Crash(_))) > 0,
        "wild register values crash some runs"
    );
}
