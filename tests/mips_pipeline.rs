//! The architecture front-end pipeline (§5 "Supporting Tools"): MIPS text
//! to generic assembly to symbolic analysis, unchanged.

use symplfied::asm::mips::translate_mips;
use symplfied::check::SearchLimits;
use symplfied::machine::ExecLimits;
use symplfied::prelude::*;

const MIPS_ABS: &str = r"
    # abs(x) via branch
    main:
        li   $v0, 5
        syscall              # read x
        move $t0, $v0
        bgez $t0, pos
        neg  $t0, $t0
    pos:
        move $a0, $t0
        li   $v0, 1
        syscall              # print |x|
        li   $v0, 10
        syscall
";

#[test]
fn translated_mips_runs_concretely() {
    let program = translate_mips(MIPS_ABS).unwrap();
    for x in [-5i64, 0, 9] {
        let mut state = MachineState::with_input(vec![x]);
        run_concrete(
            &mut state,
            &program,
            &DetectorSet::new(),
            &ExecLimits::default(),
        )
        .unwrap();
        assert_eq!(state.status(), &Status::Halted);
        assert_eq!(state.output_ints(), vec![x.abs()], "x = {x}");
    }
}

#[test]
fn translated_mips_is_symbolically_analyzable() {
    let program = translate_mips(MIPS_ABS).unwrap();
    let fw = Framework::new(program)
        .with_input(vec![-7])
        .with_limits(SearchLimits::with_max_steps(200));
    assert_eq!(fw.golden_output(), vec![7]);
    let verdict = fw.enumerate_undetected(ErrorClass::RegisterFile);
    assert!(
        !verdict.is_resilient(),
        "an error in $t0 before the print escapes"
    );
    // The branch on the erroneous sign forks: both |x| paths are explored.
    assert!(verdict.states_explored > verdict.points_examined);
}

#[test]
fn mips_function_calls_translate() {
    // jal/jr with a stack frame, like compiled code.
    let src = r"
    main:
        li   $sp, 1000
        li   $a0, 20
        jal  double
        move $a0, $v0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
    double:
        addiu $sp, $sp, -8
        sw   $ra, 0($sp)
        addu $v0, $a0, $a0
        lw   $ra, 0($sp)
        addiu $sp, $sp, 8
        jr   $ra
    ";
    let program = translate_mips(src).unwrap();
    let mut state = MachineState::new();
    run_concrete(
        &mut state,
        &program,
        &DetectorSet::new(),
        &ExecLimits::default(),
    )
    .unwrap();
    assert_eq!(state.output_ints(), vec![40]);
}

#[test]
fn mips_mult_div_hilo_sequences() {
    let src = r"
        li   $t0, 84
        li   $t1, 2
        div  $t0, $t1
        mflo $a0          # quotient
        li   $v0, 1
        syscall
        mfhi $a0          # remainder
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
    ";
    let program = translate_mips(src).unwrap();
    let mut state = MachineState::new();
    run_concrete(
        &mut state,
        &program,
        &DetectorSet::new(),
        &ExecLimits::default(),
    )
    .unwrap();
    assert_eq!(state.output_ints(), vec![42, 0]);
}
