//! Golden wire-format vectors: checked-in byte images of every frame kind
//! the distributed-campaign protocol ships, pinned against the current
//! encoders *and* decoders.
//!
//! A change to any codec layer (leaf varints, state codec, report codec,
//! point codec, message framing, preamble) that moves bytes will fail this
//! suite — the signal that [`symplfied::wire::PROTOCOL_VERSION`] must be
//! bumped *before* old workers are stranded mid-campaign. CI runs this in
//! release mode on every push.
//!
//! To regenerate after an *intentional* format change (with the version
//! bump):
//!
//! ```text
//! WIRE_GOLDEN_REGEN=1 cargo test --test wire_golden
//! ```

use std::path::PathBuf;
use std::time::Duration;

use symplfied::check::{FrontierPolicy, SearchLimits, Solution};
use symplfied::cluster::{Finding, TaskResult, TaskSpec};
use symplfied::machine::{MachineState, OutItem, Status};
use symplfied::prelude::*;
use symplfied::symbolic::{Constraint, Location, Value};
use symplfied::wire::{
    decode_message, encode_message, read_frame, write_frame, write_preamble, Message, TaskFrame,
};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/wire_golden")
}

/// Compares `bytes` against the named golden file — or rewrites it under
/// `WIRE_GOLDEN_REGEN=1`.
fn check_golden(name: &str, bytes: &[u8]) {
    let path = golden_dir().join(name);
    if std::env::var_os("WIRE_GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/wire_golden");
        std::fs::write(&path, bytes).expect("write golden vector");
        return;
    }
    let golden = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing golden vector {}: {e}", path.display()));
    assert_eq!(
        golden, bytes,
        "{name}: byte format changed — if intentional, bump PROTOCOL_VERSION and \
         regenerate with WIRE_GOLDEN_REGEN=1"
    );
}

/// A fully deterministic machine state exercising every encoded component.
fn fixture_state() -> MachineState {
    let mut s = MachineState::with_input(vec![25, 99, -4]);
    let _ = s.read_input();
    s.set_pc(42);
    for _ in 0..9 {
        s.bump_steps();
    }
    s.set_reg(Reg::r(1), Value::Int(-7));
    s.set_reg(Reg::r(13), Value::Err);
    s.load_memory([(0, 640), (8, -1), (2048, 3)]);
    s.set_mem(16, Value::Err);
    let _ = s
        .constraints_mut()
        .constrain(Location::reg(13), Constraint::Gt(2));
    let _ = s
        .constraints_mut()
        .constrain(Location::Mem(16), Constraint::Ne(0));
    s.push_output(OutItem::Str("Advisory = ".into()));
    s.push_output(OutItem::Val(Value::Int(2)));
    s.set_status(Status::Halted);
    s
}

fn fixture_task() -> TaskFrame {
    TaskFrame {
        program_id: "tcas".into(),
        program_digest: 0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210,
        input: vec![601, 579, 4, 639, 0, 2],
        spec: TaskSpec {
            id: 7,
            points: vec![
                InjectionPoint::new(12, InjectTarget::Register(Reg::r(4))),
                InjectionPoint::new(57, InjectTarget::LoadedWord).at_occurrence(3),
                InjectionPoint::new(101, InjectTarget::ProgramCounter),
            ],
        },
        predicate: Predicate::WrongOutput { expected: vec![1] },
        search: SearchLimits {
            exec: symplfied::machine::ExecLimits::with_max_steps(5_000),
            max_states: 300_000,
            max_solutions: 10,
            max_time: Some(Duration::from_secs(60)),
            policy: FrontierPolicy::Bfs,
            max_frontier_bytes: Some(512 << 10),
        },
        task_budget: Some(Duration::from_secs(120)),
        max_findings: 10,
        point_workers: 1,
        heartbeat_interval: Duration::from_millis(500),
    }
}

fn fixture_done() -> Message {
    Message::TaskDone {
        result: TaskResult {
            id: 7,
            points_examined: 3,
            points_total: 3,
            activated: 3,
            findings: 1,
            completed: true,
            elapsed: Duration::from_millis(875),
            states_explored: 51_234,
            point_workers: 1,
            steals: 0,
            peak_frontier_len: 211,
            peak_frontier_bytes: 346_112,
            spilled_states: 0,
            // Not wire-encoded (process-local cache stats); zero keeps the
            // decoded struct equal to this fixture.
            memo_hits: 0,
            memo_states_skipped: 0,
            prefix_steps_saved: 0,
        },
        findings: vec![Finding {
            task_id: 7,
            point: InjectionPoint::new(12, InjectTarget::Register(Reg::r(4))),
            solution: Solution {
                state: fixture_state(),
                trace: vec![0, 1, 2, 12, 13, 57, 101, 102],
            },
        }],
    }
}

fn framed(message: &Message) -> Vec<u8> {
    let payload = encode_message(message).expect("fixtures are wire-encodable");
    let mut buf = Vec::new();
    write_frame(&mut buf, &payload).expect("in-memory frame write");
    buf
}

#[test]
fn preamble_bytes_are_pinned() {
    let mut buf = Vec::new();
    write_preamble(&mut buf).unwrap();
    check_golden("preamble.bin", &buf);
    // And it must open with the magic in the clear.
    assert_eq!(&buf[..4], b"SYWR");
}

#[test]
fn task_frame_bytes_are_pinned_and_decode() {
    let bytes = framed(&Message::Task(fixture_task()));
    check_golden("task_frame.bin", &bytes);

    // Decode the *golden file* (not our fresh encoding), proving old
    // bytes still decode to the expected campaign task.
    let golden = std::fs::read(golden_dir().join("task_frame.bin")).unwrap();
    let payload = read_frame(&mut golden.as_slice()).unwrap();
    let Message::Task(task) = decode_message(&payload).unwrap() else {
        panic!("golden task frame decoded to the wrong message kind");
    };
    let expected = fixture_task();
    assert_eq!(task.program_id, expected.program_id);
    assert_eq!(task.program_digest, expected.program_digest);
    assert_eq!(task.input, expected.input);
    assert_eq!(task.spec, expected.spec);
    assert_eq!(task.search.max_states, expected.search.max_states);
    assert_eq!(
        task.search.max_frontier_bytes,
        expected.search.max_frontier_bytes
    );
    assert_eq!(task.task_budget, expected.task_budget);
    assert_eq!(task.point_workers, expected.point_workers);
    assert_eq!(task.heartbeat_interval, expected.heartbeat_interval);
}

#[test]
fn task_done_frame_bytes_are_pinned_and_decode() {
    let bytes = framed(&fixture_done());
    check_golden("task_done_frame.bin", &bytes);

    let golden = std::fs::read(golden_dir().join("task_done_frame.bin")).unwrap();
    let payload = read_frame(&mut golden.as_slice()).unwrap();
    let Message::TaskDone { result, findings } = decode_message(&payload).unwrap() else {
        panic!("golden result frame decoded to the wrong message kind");
    };
    let Message::TaskDone {
        result: expected_result,
        findings: expected_findings,
    } = fixture_done()
    else {
        unreachable!()
    };
    assert_eq!(result, expected_result);
    assert_eq!(findings, expected_findings);
    // The decoded solution state must carry live fingerprint caches.
    let state = &findings[0].solution.state;
    assert_eq!(state.fingerprint(), state.fingerprint_from_scratch());
    assert_eq!(state, &fixture_state());
}

#[test]
fn control_frame_bytes_are_pinned() {
    check_golden(
        "error_frame.bin",
        &framed(&Message::Error("program digest mismatch for `tcas`".into())),
    );
    check_golden("shutdown_frame.bin", &framed(&Message::Shutdown));

    let golden = std::fs::read(golden_dir().join("shutdown_frame.bin")).unwrap();
    let payload = read_frame(&mut golden.as_slice()).unwrap();
    assert!(matches!(
        decode_message(&payload).unwrap(),
        Message::Shutdown
    ));
}

#[test]
fn supervision_frame_bytes_are_pinned() {
    // The v2 fault-tolerance control frames: both are a single tag byte.
    check_golden("heartbeat_frame.bin", &framed(&Message::Heartbeat));
    check_golden("cancel_frame.bin", &framed(&Message::Cancel));

    let golden = std::fs::read(golden_dir().join("heartbeat_frame.bin")).unwrap();
    let payload = read_frame(&mut golden.as_slice()).unwrap();
    assert!(matches!(
        decode_message(&payload).unwrap(),
        Message::Heartbeat
    ));
    let golden = std::fs::read(golden_dir().join("cancel_frame.bin")).unwrap();
    let payload = read_frame(&mut golden.as_slice()).unwrap();
    assert!(matches!(decode_message(&payload).unwrap(), Message::Cancel));
}

#[test]
fn membership_frame_bytes_are_pinned() {
    // The v3 elastic-membership frames: a joining worker's Register and
    // the coordinator's Welcome.
    check_golden(
        "register_frame.bin",
        &framed(&Message::Register {
            worker: "joiner-pid4242".into(),
        }),
    );
    check_golden(
        "welcome_frame.bin",
        &framed(&Message::Welcome {
            program_id: "tcas".into(),
            program_digest: 0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210,
        }),
    );

    let golden = std::fs::read(golden_dir().join("register_frame.bin")).unwrap();
    let payload = read_frame(&mut golden.as_slice()).unwrap();
    let Message::Register { worker } = decode_message(&payload).unwrap() else {
        panic!("golden register frame decoded to the wrong message kind");
    };
    assert_eq!(worker, "joiner-pid4242");

    let golden = std::fs::read(golden_dir().join("welcome_frame.bin")).unwrap();
    let payload = read_frame(&mut golden.as_slice()).unwrap();
    let Message::Welcome {
        program_id,
        program_digest,
    } = decode_message(&payload).unwrap()
    else {
        panic!("golden welcome frame decoded to the wrong message kind");
    };
    assert_eq!(program_id, "tcas");
    assert_eq!(program_digest, 0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210);
}

#[test]
fn session_frame_bytes_are_pinned() {
    // The v4 campaign-service frames: a coordinator's ClientHello and the
    // multi-tenant service's ClientAccept.
    check_golden(
        "client_hello_frame.bin",
        &framed(&Message::ClientHello {
            client: "campaign-tcas".into(),
            priority: 3,
        }),
    );
    check_golden(
        "client_accept_frame.bin",
        &framed(&Message::ClientAccept { client_id: 17 }),
    );

    let golden = std::fs::read(golden_dir().join("client_hello_frame.bin")).unwrap();
    let payload = read_frame(&mut golden.as_slice()).unwrap();
    let Message::ClientHello { client, priority } = decode_message(&payload).unwrap() else {
        panic!("golden client-hello frame decoded to the wrong message kind");
    };
    assert_eq!(client, "campaign-tcas");
    assert_eq!(priority, 3);

    let golden = std::fs::read(golden_dir().join("client_accept_frame.bin")).unwrap();
    let payload = read_frame(&mut golden.as_slice()).unwrap();
    let Message::ClientAccept { client_id } = decode_message(&payload).unwrap() else {
        panic!("golden client-accept frame decoded to the wrong message kind");
    };
    assert_eq!(client_id, 17);
}
