//! §6.4 integration tests: symbolic injections on the replace program.

use std::time::Duration;

use symplfied::apps::replace_input;
use symplfied::check::{Predicate, SearchLimits};
use symplfied::cluster::{run_cluster, ClusterConfig};
use symplfied::inject::{run_point, Campaign, ErrorClass, InjectTarget, InjectionPoint};
use symplfied::machine::ExecLimits;
use symplfied::prelude::*;

fn limits() -> SearchLimits {
    SearchLimits {
        exec: ExecLimits::with_max_steps(20_000),
        max_states: 100_000,
        max_solutions: 10,
        max_time: Some(Duration::from_secs(30)),
        ..SearchLimits::default()
    }
}

#[test]
fn dodash_range_corruption_builds_erroneous_pattern() {
    // The paper's example scenario: the parameter holding the range end
    // for dodash is injected; an erroneous pattern is constructed, which
    // leads to a failure in the pattern match.
    let w = symplfied::apps::replace();
    let golden = symplfied::apps::golden(&w).output_ints();
    assert_eq!(replace_input::decode(&golden), "ZZdx");

    let dd_loop = w.program.label_address("dd_loop").unwrap();
    let point = InjectionPoint::new(dd_loop, InjectTarget::Register(Reg::r(5)));
    let outcome = run_point(
        &w.program,
        &w.detectors,
        &w.input,
        &point,
        &Predicate::WrongOutput {
            expected: golden.clone(),
        },
        &limits(),
    );
    assert!(outcome.activated, "dodash runs for the [a-c] range");
    assert!(
        outcome.found_errors(),
        "a corrupted range end must change the matching behaviour"
    );
    // Every reported incorrect outcome halted normally with a different
    // substitution result — silent data corruption, not a crash.
    for sol in &outcome.report.solutions {
        assert_eq!(sol.state.status(), &Status::Halted);
        assert_ne!(sol.state.output_ints(), golden);
    }
}

#[test]
fn pattern_char_corruption_can_return_original_string() {
    // An erroneous pattern character can make the pattern match nothing,
    // so the program returns the original string without substitution —
    // the outcome the paper's §6.4 example describes.
    let w = symplfied::apps::replace();
    let golden = symplfied::apps::golden(&w).output_ints();
    let original: Vec<i64> = "axbxdx".chars().map(|c| i64::from(u32::from(c))).collect();

    // `st $11, 0($12)` in the pattern-read loop stores the pattern char.
    let point = InjectionPoint::new(10, InjectTarget::Register(Reg::r(11)));
    let outcome = run_point(
        &w.program,
        &w.detectors,
        &w.input,
        &point,
        &Predicate::WrongOutput { expected: golden },
        &limits(),
    );
    assert!(outcome.activated);
    assert!(
        outcome
            .report
            .solutions
            .iter()
            .any(|s| s.state.output_ints() == original),
        "some fork must return the unsubstituted original string; got {:?}",
        outcome
            .report
            .solutions
            .iter()
            .map(|s| replace_input::decode(&s.state.output_ints()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn sharded_campaign_reports_task_statistics() {
    // A scaled-down §6.4 campaign: shard the register-error space, pool
    // the per-task statistics, and check the report's invariants.
    let w = symplfied::apps::replace();
    let golden = symplfied::apps::golden(&w).output_ints();
    let campaign = Campaign::new(&w.program, ErrorClass::RegisterFile);
    assert!(campaign.len() > 100, "replace has many injection points");

    // Keep the test fast: first 40 points only, small budgets.
    let subset = Campaign {
        class: ErrorClass::RegisterFile,
        points: campaign.points[..40].to_vec(),
    };
    let config = ClusterConfig {
        tasks: 8,
        search: SearchLimits {
            exec: ExecLimits::with_max_steps(6_000),
            max_states: 15_000,
            max_solutions: 5,
            max_time: Some(Duration::from_secs(5)),
            ..SearchLimits::default()
        },
        task_budget: Some(Duration::from_secs(20)),
        max_findings_per_task: 5,
        ..ClusterConfig::default()
    };
    let report = run_cluster(
        &w.program,
        &w.detectors,
        &w.input,
        &subset,
        &Predicate::WrongOutput { expected: golden },
        &config,
    );
    let examined: usize = report.tasks.iter().map(|t| t.points_examined).sum();
    assert!(examined > 0);
    assert_eq!(
        report.tasks.iter().map(|t| t.points_total).sum::<usize>(),
        40
    );
    // Tasks partition cleanly and the summary is printable.
    assert!(report.summary().contains("tasks"));
    // Findings reference points inside the subset.
    for f in &report.findings {
        assert!(subset.points.contains(&f.point));
    }
}

#[test]
fn replace_detects_nothing_without_check_instructions() {
    // replace has no detectors: no Detected terminal can ever appear.
    let w = symplfied::apps::replace();
    let point = InjectionPoint::new(
        w.program.label_address("am_loop").unwrap(),
        InjectTarget::Register(Reg::r(16)),
    );
    let outcome = run_point(
        &w.program,
        &w.detectors,
        &w.input,
        &point,
        &Predicate::Detected,
        &limits(),
    );
    assert!(outcome.activated);
    assert!(outcome.report.solutions.is_empty());
}
